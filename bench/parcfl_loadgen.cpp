// parcfl_loadgen — open-loop load generator for the parcfl query service.
//
// Drives a synthetic Table-I workload through service::QueryService in two
// phases over the *same* request sequence:
//
//   cold:  fresh session, empty JmpStore — every query pays full traversal;
//   warm:  same session, same requests — queries ride the jmp shortcuts the
//          cold phase minted (§III-B data sharing, amortised across phases).
//
// Arrivals are open-loop: request i is injected at `start + i/rate`
// regardless of how the service is keeping up, so measured latency includes
// queueing delay under saturation (each of the --clients worker threads
// does block on its own in-flight request, making this the standard
// partly-open approximation). --rate 0 disables pacing.
//
// Results go to BENCH_service.json (same schema style as BENCH_micro.json:
// a "context" object plus a "benchmarks" array) — throughput, latency
// percentiles, per-phase traversed steps, and the cold-vs-warm jmp-hit
// ratio that is the service's whole reason to exist.
//
//   parcfl_loadgen [--benchmark NAME] [--scale S] [--threads N]
//                  [--clients N] [--requests N] [--rate QPS]
//                  [--alias-every K] [--batch N] [--linger-us N]
//                  [--queue N] [--out FILE] [--connect PORT]
//                  [--scrape FILE] [--answers-out FILE]
//                  [--tenants N] [--tenant-skew S] [--max-sessions N]
//                  [--max-resident-mb N] [--spill-dir DIR]
//                  [--tenants-out FILE]
//
// --connect PORT skips the in-process service and replays the request
// sequence against a running `parcfl_serve` on 127.0.0.1:PORT over TCP
// (request-plane metrics only; engine counters stay on the server). The
// same flag drives a `parcfl_route` front-end — the protocol is identical.
// --answers-out FILE (connect mode) replays the request sequence once more
// on a single connection after the phases and writes one normalized
// `<request> -> <reply>` line per request (charged-steps token blanked, the
// one field legitimately differing between engines). Dumps from a router
// fleet and from a single-node server over the same graph must be
// byte-identical — CI diffs them (see README "Scaling out").
// --scrape FILE saves the service's Prometheus exposition after the warm
// phase (in connect mode via the `metrics` wire verb).
//
// --tenants N switches on the mixed-tenant fleet mode (in-process only):
// the base graph is written to disk once, N tenants `open` it, and every
// request is assigned a tenant by a Zipf(S) draw — a few hot tenants, a
// long cold tail, which under a small --max-sessions cap exercises the
// LRU evict / mmap-reopen cycle under live traffic. Results (per-tenant
// qps, fleet eviction/reopen counters, peak RSS, and a cold-solve vs
// warm-mmap-reopen micro-measure) go to BENCH_tenants.json.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "andersen/prefilter.hpp"
#include "bench_util.hpp"
#include "pag/pag_io.hpp"
#include "service/service.hpp"
#include "support/stats.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

using namespace parcfl;

namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  std::string benchmark = "avrora";
  double scale = 1.0;
  unsigned threads = 4;       // engine workers
  unsigned clients = 8;       // load-generating threads
  /// 0 = one request per distinct query variable. Larger values cycle over
  /// the variables — note that repeats self-warm the cold phase, shrinking
  /// the reported cold-vs-warm gap (the steady state arrives early).
  std::uint64_t requests = 0;
  double rate = 0.0;          // arrivals per second; 0 = unpaced
  std::uint64_t alias_every = 8;  // every K-th request is an alias query
  std::uint64_t taint_every = 0;    // every K-th request is a taint query (0 = off)
  std::uint64_t depends_every = 0;  // every K-th request is a depends query
  std::uint32_t batch = 64;
  long linger_us = 500;
  std::uint32_t queue = 4096;
  std::string out = "BENCH_service.json";
  std::string scrape;       // empty = no metrics scrape
  std::string answers_out;  // empty = no answer dump (connect mode only)
  long connect_port = -1;
  bool reduce = true;     // serve the reduced graph (in-process mode)
  bool prefilter = true;  // Andersen prefilter short-circuit (in-process mode)
  bool index = true;      // background index compactor (in-process mode)

  // Mixed-tenant fleet mode (0 = off).
  unsigned tenants = 0;
  double tenant_skew = 1.0;  // Zipf exponent of the tenant draw
  std::size_t max_sessions = 2;
  std::uint64_t max_resident_mb = 0;
  std::string spill_dir = ".";
  std::string tenants_out = "BENCH_tenants.json";
};

int usage() {
  std::fprintf(stderr,
               "usage: parcfl_loadgen [--benchmark NAME] [--scale S]\n"
               "  [--threads N] [--clients N] [--requests N] [--rate QPS]\n"
               "  [--alias-every K] [--taint-every K] [--depends-every K]\n"
               "  [--batch N] [--linger-us N] [--queue N]\n"
               "  [--out FILE] [--connect PORT] [--scrape FILE]\n"
               "  [--answers-out FILE]\n"
               "  [--no-reduce] [--no-prefilter] [--index] [--no-index]\n"
               "  [--tenants N] [--tenant-skew S] [--max-sessions N]\n"
               "  [--max-resident-mb N] [--spill-dir DIR] [--tenants-out F]\n");
  return 2;
}

struct PhaseResult {
  double wall_seconds = 0.0;
  std::vector<double> latencies_ms;  // completed requests only
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t incomplete = 0;  // partial / early-terminated answers
  support::QueryCounters delta;  // engine work this phase (in-process only)
};

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(idx),
                   xs.end());
  return xs[idx];
}

double hit_ratio(const support::QueryCounters& c) {
  return c.jmp_lookups == 0 ? 0.0
                            : static_cast<double>(c.jmps_taken) /
                                  static_cast<double>(c.jmp_lookups);
}

double prefilter_hit_rate(const support::QueryCounters& c) {
  const std::uint64_t probes = c.prefilter_hits + c.prefilter_misses;
  return probes == 0 ? 0.0
                     : static_cast<double>(c.prefilter_hits) /
                           static_cast<double>(probes);
}

/// The fixed request sequence both phases replay. Cycles over the workload's
/// deduplicated query variables in a splitmix-shuffled order.
std::vector<service::Request> build_requests(const bench::Workload& w,
                                             const Config& cfg) {
  std::vector<pag::NodeId> vars = w.queries;
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = vars.size(); i > 1; --i) {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    std::swap(vars[i - 1], vars[(z ^ (z >> 31)) % i]);
  }
  std::vector<service::Request> requests;
  requests.reserve(cfg.requests);
  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    service::Request r;
    const pag::NodeId a = vars[i % vars.size()];
    // Two-node verbs interleave on their own strides; taint/depends take
    // precedence over alias so a mixed scenario actually carries flow
    // traffic (all roots are query variables, as the grammars require).
    if (cfg.taint_every != 0 && i % cfg.taint_every == cfg.taint_every - 1) {
      r.verb = service::Verb::kTaint;
      r.a = a;
      r.b = vars[(i + 1) % vars.size()];
    } else if (cfg.depends_every != 0 &&
               i % cfg.depends_every == cfg.depends_every / 2) {
      r.verb = service::Verb::kDepends;
      r.a = a;
      r.b = vars[(i + 1) % vars.size()];
    } else if (cfg.alias_every != 0 &&
               i % cfg.alias_every == cfg.alias_every - 1) {
      r.verb = service::Verb::kAlias;
      r.a = a;
      r.b = vars[(i + 1) % vars.size()];
    } else {
      r.verb = service::Verb::kQuery;
      r.a = a;
    }
    requests.push_back(r);
  }
  return requests;
}

/// Replay `requests` with open-loop pacing; `issue(i)` performs request i and
/// returns true when the reply was a shed, recording incomplete answers via
/// the second flag.
template <class Issue>
PhaseResult run_phase(const std::vector<service::Request>& requests,
                      const Config& cfg, Issue&& issue) {
  PhaseResult phase;
  std::atomic<std::uint64_t> next{0};
  std::vector<std::vector<double>> lat(cfg.clients);
  std::vector<std::array<std::uint64_t, 3>> counts(cfg.clients,
                                                   {0, 0, 0});  // ok/shed/inc
  const auto start = Clock::now();
  const double period_s = cfg.rate > 0 ? 1.0 / cfg.rate : 0.0;

  auto client = [&](unsigned id) {
    for (;;) {
      const std::uint64_t i =
          next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests.size()) break;
      const auto arrival =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(period_s *
                                                    static_cast<double>(i)));
      if (cfg.rate > 0) std::this_thread::sleep_until(arrival);
      const auto issued = cfg.rate > 0 ? arrival : Clock::now();
      bool shed = false, incomplete = false;
      issue(i, shed, incomplete);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - issued)
              .count();
      if (shed) {
        ++counts[id][1];
      } else {
        lat[id].push_back(ms);
        ++counts[id][incomplete ? 2 : 0];
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg.clients);
  for (unsigned c = 0; c < cfg.clients; ++c) threads.emplace_back(client, c);
  for (auto& t : threads) t.join();

  phase.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (unsigned c = 0; c < cfg.clients; ++c) {
    phase.latencies_ms.insert(phase.latencies_ms.end(), lat[c].begin(),
                              lat[c].end());
    phase.ok += counts[c][0];
    phase.shed += counts[c][1];
    phase.incomplete += counts[c][2];
  }
  return phase;
}

void emit_phase(std::FILE* f, const char* name, const Config& cfg,
                PhaseResult& p, bool with_engine) {
  const double qps =
      p.wall_seconds > 0
          ? static_cast<double>(p.latencies_ms.size()) / p.wall_seconds
          : 0.0;
  std::fprintf(f,
               "    {\"name\": \"service/%s\", \"run_type\": \"aggregate\", "
               "\"iterations\": %llu, \"real_time\": %.3f, \"time_unit\": "
               "\"ms\", \"qps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
               "\"p99_ms\": %.4f, \"max_ms\": %.4f, \"ok\": %llu, "
               "\"incomplete\": %llu, \"shed\": %llu",
               name,
               static_cast<unsigned long long>(cfg.requests),
               p.wall_seconds * 1e3, qps, percentile(p.latencies_ms, 0.50),
               percentile(p.latencies_ms, 0.95),
               percentile(p.latencies_ms, 0.99),
               p.latencies_ms.empty()
                   ? 0.0
                   : *std::max_element(p.latencies_ms.begin(),
                                       p.latencies_ms.end()),
               static_cast<unsigned long long>(p.ok),
               static_cast<unsigned long long>(p.incomplete),
               static_cast<unsigned long long>(p.shed));
  if (with_engine)
    std::fprintf(f,
                 ", \"traversed_steps\": %llu, \"charged_steps\": %llu, "
                 "\"jmps_taken\": %llu, \"jmp_hit_ratio\": %.4f, "
                 "\"prefilter_hits\": %llu, \"prefilter_misses\": %llu, "
                 "\"prefilter_hit_rate\": %.4f",
                 static_cast<unsigned long long>(p.delta.traversed_steps),
                 static_cast<unsigned long long>(p.delta.charged_steps),
                 static_cast<unsigned long long>(p.delta.jmps_taken),
                 hit_ratio(p.delta),
                 static_cast<unsigned long long>(p.delta.prefilter_hits),
                 static_cast<unsigned long long>(p.delta.prefilter_misses),
                 prefilter_hit_rate(p.delta));
  std::fprintf(f, "}");
}

#ifndef _WIN32
/// Minimal blocking line client for --connect mode.
class TcpClient {
 public:
  explicit TcpClient(long port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  /// Send one request line, return the reply line (empty on error).
  std::string roundtrip(const std::string& line) {
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t w = ::send(fd_, line.data() + sent, line.size() - sent, 0);
      if (w <= 0) return {};
      sent += static_cast<std::size_t>(w);
    }
    bool got = false;
    return read_line(got);
  }

  /// Fetch the server's Prometheus exposition through the counted multi-line
  /// frame (`ok metrics <n>` header, then n payload lines). False on
  /// transport or framing errors.
  bool scrape(std::string& out) {
    const std::string header = roundtrip("metrics\n");
    const char kPrefix[] = "ok metrics ";
    if (header.rfind(kPrefix, 0) != 0) return false;
    const unsigned long lines =
        std::strtoul(header.c_str() + sizeof(kPrefix) - 1, nullptr, 10);
    out.clear();
    for (unsigned long i = 0; i < lines; ++i) {
      bool got = false;
      const std::string line = read_line(got);
      if (!got) return false;
      out += line;
      out += '\n';
    }
    return true;
  }

 private:
  std::string read_line(bool& got) {
    for (;;) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string reply = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        got = true;
        return reply;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        got = false;
        return {};
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

std::string format_request_line(const service::Request& r) {
  if (r.verb == service::Verb::kAlias || r.verb == service::Verb::kTaint ||
      r.verb == service::Verb::kDepends) {
    const char* verb = r.verb == service::Verb::kAlias    ? "alias"
                       : r.verb == service::Verb::kTaint  ? "taint"
                                                          : "depends";
    return std::string(verb) + " " + std::to_string(r.a.value()) + " " +
           std::to_string(r.b.value()) + "\n";
  }
  return "query " + std::to_string(r.a.value()) + "\n";
}

/// Blank the charged-steps token (third field of ok frames) — it reflects
/// which engine answered and how warm it was, not what the answer is.
std::string normalize_reply(const std::string& reply) {
  if (reply.rfind("ok ", 0) != 0) return reply;
  const std::size_t status_end = reply.find(' ', 3);
  if (status_end == std::string::npos) return reply;
  std::size_t charged_end = reply.find(' ', status_end + 1);
  if (charged_end == std::string::npos) charged_end = reply.size();
  return reply.substr(0, status_end + 1) + "_" + reply.substr(charged_end);
}

/// Deterministic answer dump for cross-engine identity diffs: the request
/// sequence replayed sequentially on one fresh connection.
bool dump_answers(const std::vector<service::Request>& requests,
                  const Config& cfg) {
  TcpClient conn(cfg.connect_port);
  if (!conn.ok()) {
    std::fprintf(stderr, "parcfl_loadgen: answers-out: cannot connect\n");
    return false;
  }
  std::FILE* f = std::fopen(cfg.answers_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "parcfl_loadgen: cannot write %s\n",
                 cfg.answers_out.c_str());
    return false;
  }
  for (const service::Request& r : requests) {
    std::string line = format_request_line(r);
    line.pop_back();  // newline
    const std::string reply = conn.roundtrip(line + "\n");
    std::fprintf(f, "%s -> %s\n", line.c_str(),
                 normalize_reply(reply).c_str());
  }
  std::fclose(f);
  std::printf("wrote %s (%zu answers)\n", cfg.answers_out.c_str(),
              requests.size());
  return true;
}
#endif  // _WIN32

void write_scrape(const std::string& path, const std::string& exposition);

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Peak resident set in MiB from /proc/self/status (0 where unavailable).
double peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
  }
  return 0.0;
}

/// Mixed-tenant fleet mode: N tenants over one shared base graph file, Zipf
/// tenant draw per request, cold + warm phases, then a cold-solve vs
/// warm-mmap-reopen micro-measure on a probe tenant.
int run_tenant_mode(const Config& cfg, const bench::Workload& workload,
                    std::vector<service::Request> requests) {
  const std::string base_pag_path = cfg.spill_dir + "/loadgen_base.pag";
  {
    std::ofstream os(base_pag_path);
    pag::write_pag(os, workload.pag);
    if (!os) {
      std::fprintf(stderr, "parcfl_loadgen: cannot write %s\n",
                   base_pag_path.c_str());
      return 1;
    }
  }

  service::ServiceOptions options;
  options.session.engine.threads = cfg.threads;
  options.session.engine.solver = bench::solver_options();
  options.session.engine.solver.tau_finished = 1;
  options.session.engine.solver.tau_unfinished = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, options.session.engine.solver.budget / 8));
  options.max_batch = cfg.batch;
  options.max_linger = std::chrono::microseconds(cfg.linger_us);
  options.max_queue = cfg.queue;
  options.session.reduce_graph = cfg.reduce;
  options.session.prefilter = cfg.prefilter;
  options.session.index = cfg.index;
  options.max_sessions = cfg.max_sessions;
  options.max_resident_bytes = cfg.max_resident_mb * 1024ull * 1024ull;
  options.spill_dir = cfg.spill_dir;
  service::QueryService svc(workload.pag, options);

  std::vector<std::string> names;
  names.reserve(cfg.tenants);
  for (unsigned t = 0; t < cfg.tenants; ++t) {
    names.push_back("t" + std::to_string(t));
    service::Request open;
    open.verb = service::Verb::kOpen;
    open.tenant = names.back();
    open.path = base_pag_path;
    const service::Reply r = svc.call(std::move(open));
    if (r.status != service::Reply::Status::kOk) {
      std::fprintf(stderr, "parcfl_loadgen: open %s failed: %s\n",
                   names.back().c_str(), r.text.c_str());
      return 1;
    }
  }

  // Zipf(S) tenant draw, deterministic in the request index: weight of
  // tenant k is 1/(k+1)^S, sampled through the CDF.
  std::vector<double> cdf(cfg.tenants);
  double total = 0.0;
  for (unsigned t = 0; t < cfg.tenants; ++t) {
    total += 1.0 / std::pow(static_cast<double>(t + 1), cfg.tenant_skew);
    cdf[t] = total;
  }
  std::vector<std::uint32_t> tenant_of(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const double u =
        static_cast<double>(splitmix64(i) >> 11) / 9007199254740992.0 * total;
    tenant_of[i] = static_cast<std::uint32_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (tenant_of[i] >= cfg.tenants) tenant_of[i] = cfg.tenants - 1;
    requests[i].tenant = names[tenant_of[i]];
  }

  struct TenantCount {
    std::atomic<std::uint64_t> ok{0}, shed{0};
  };
  std::unique_ptr<TenantCount[]> per_tenant(new TenantCount[cfg.tenants]);
  auto issue = [&](std::uint64_t i, bool& shed, bool& incomplete) {
    const service::Reply r = svc.call(requests[i]);
    shed = r.status != service::Reply::Status::kOk;
    incomplete = !shed && r.query_status != cfl::QueryStatus::kComplete;
    (shed ? per_tenant[tenant_of[i]].shed : per_tenant[tenant_of[i]].ok)
        .fetch_add(1, std::memory_order_relaxed);
  };
  PhaseResult cold = run_phase(requests, cfg, issue);
  PhaseResult warm = run_phase(requests, cfg, issue);

  // Cold solve vs warm mmap reopen, measured at the session layer so the
  // ratio isolates what the evict/spill/reopen cycle actually changes:
  // re-running the traversals that mint the sharing state, versus mapping
  // the spilled v3 image back in and answering from it. Graph parse and the
  // service's per-query dispatch are paid identically on both sides of a
  // real reopen, so they are excluded from both measurements.
  std::vector<service::Session::Item> probe_items;
  for (const service::Request& r : requests) {
    if (r.verb != service::Verb::kQuery || !r.a.valid()) continue;
    probe_items.push_back({r.a, 0});
    if (probe_items.size() >= 512) break;
  }
  const std::string probe_state = cfg.spill_dir + "/loadgen_probe.state";
  double cold_ms = 0.0, reopen_ms = 0.0;
  {
    pag::Pag probe_pag = workload.pag;
    const auto t0 = Clock::now();
    service::Session cold_session(std::move(probe_pag), options.session);
    (void)cold_session.run_batch(probe_items);
    cold_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count();
    bool wrote_pag = false;
    std::string spill_error;
    if (!cold_session.spill(probe_state, cfg.spill_dir + "/loadgen_probe.pag",
                            &wrote_pag, &spill_error)) {
      std::fprintf(stderr, "parcfl_loadgen: probe spill failed: %s\n",
                   spill_error.c_str());
      return 1;
    }
  }
  {
    pag::Pag probe_pag = workload.pag;
    service::Session::Options reopen_opts = options.session;
    reopen_opts.state_path = probe_state;
    const auto t0 = Clock::now();
    service::Session warm_session(std::move(probe_pag), reopen_opts);
    (void)warm_session.run_batch(probe_items);
    reopen_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
  }
  const double reopen_speedup = reopen_ms > 0 ? cold_ms / reopen_ms : 0.0;

  const service::ServiceStats stats = svc.stats();
  std::fprintf(stderr, "parcfl_loadgen: fleet stats %s\n",
               stats.to_json().c_str());
  if (!cfg.scrape.empty()) write_scrape(cfg.scrape, svc.metrics_text());

  std::FILE* f = std::fopen(cfg.tenants_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "parcfl_loadgen: cannot write %s\n",
                 cfg.tenants_out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"context\": {%s, \"benchmark\": \"%s\", \"scale\": %.2f, "
               "\"tenants\": %u, \"tenant_skew\": %.2f, \"max_sessions\": "
               "%zu, \"max_resident_mb\": %llu, \"requests\": %llu, "
               "\"clients\": %u, \"engine_threads\": %u},\n"
               "  \"benchmarks\": [\n",
               bench::json_context_stamp().c_str(), workload.name.c_str(),
               cfg.scale, cfg.tenants, cfg.tenant_skew,
               cfg.max_sessions,
               static_cast<unsigned long long>(cfg.max_resident_mb),
               static_cast<unsigned long long>(cfg.requests), cfg.clients,
               cfg.threads);
  emit_phase(f, "tenants_cold", cfg, cold, /*with_engine=*/false);
  std::fprintf(f, ",\n");
  emit_phase(f, "tenants_warm", cfg, warm, /*with_engine=*/false);
  const double warm_wall = warm.wall_seconds > 0 ? warm.wall_seconds : 1.0;
  for (unsigned t = 0; t < cfg.tenants; ++t) {
    const std::uint64_t ok = per_tenant[t].ok.load();
    const std::uint64_t shed = per_tenant[t].shed.load();
    std::fprintf(f,
                 ",\n    {\"name\": \"tenant/%s\", \"run_type\": "
                 "\"aggregate\", \"ok\": %llu, \"shed\": %llu, "
                 "\"warm_qps\": %.1f}",
                 names[t].c_str(), static_cast<unsigned long long>(ok),
                 static_cast<unsigned long long>(shed),
                 static_cast<double>(ok) / 2.0 / warm_wall);
    }
  std::fprintf(f,
               ",\n    {\"name\": \"fleet\", \"run_type\": \"aggregate\", "
               "\"evictions\": %llu, \"reopens\": %llu, \"loads\": %llu, "
               "\"resident\": %llu, \"resident_bytes\": %llu, "
               "\"peak_rss_mb\": %.1f}",
               static_cast<unsigned long long>(stats.session_evictions),
               static_cast<unsigned long long>(stats.session_reopens),
               static_cast<unsigned long long>(stats.tenant_loads),
               static_cast<unsigned long long>(stats.resident_sessions),
               static_cast<unsigned long long>(stats.resident_bytes),
               peak_rss_mb());
  std::fprintf(f,
               ",\n    {\"name\": \"reopen_vs_cold\", \"run_type\": "
               "\"aggregate\", \"cold_ms\": %.3f, \"reopen_ms\": %.3f, "
               "\"speedup\": %.2f}\n  ]\n}\n",
               cold_ms, reopen_ms, reopen_speedup);
  std::fclose(f);
  std::printf(
      "wrote %s (%u tenants, %llu evictions, %llu reopens, reopen %.2fx "
      "faster than cold)\n",
      cfg.tenants_out.c_str(), cfg.tenants,
      static_cast<unsigned long long>(stats.session_evictions),
      static_cast<unsigned long long>(stats.session_reopens), reopen_speedup);
  return 0;
}

void write_scrape(const std::string& path, const std::string& exposition) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "parcfl_loadgen: cannot write %s\n", path.c_str());
    return;
  }
  std::fputs(exposition.c_str(), f);
  if (!exposition.empty() && exposition.back() != '\n') std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "parcfl_loadgen: scraped metrics to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.threads = bench::env_unsigned("PARCFL_THREADS", cfg.threads);
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--benchmark") == 0 && (v = value())) cfg.benchmark = v;
    else if (std::strcmp(arg, "--scale") == 0 && (v = value())) cfg.scale = std::atof(v);
    else if (std::strcmp(arg, "--threads") == 0 && (v = value())) cfg.threads = static_cast<unsigned>(std::atol(v));
    else if (std::strcmp(arg, "--clients") == 0 && (v = value())) cfg.clients = std::max(1u, static_cast<unsigned>(std::atol(v)));
    else if (std::strcmp(arg, "--requests") == 0 && (v = value())) cfg.requests = std::strtoull(v, nullptr, 10);
    else if (std::strcmp(arg, "--rate") == 0 && (v = value())) cfg.rate = std::atof(v);
    else if (std::strcmp(arg, "--alias-every") == 0 && (v = value())) cfg.alias_every = std::strtoull(v, nullptr, 10);
    else if (std::strcmp(arg, "--taint-every") == 0 && (v = value())) cfg.taint_every = std::strtoull(v, nullptr, 10);
    else if (std::strcmp(arg, "--depends-every") == 0 && (v = value())) cfg.depends_every = std::strtoull(v, nullptr, 10);
    else if (std::strcmp(arg, "--batch") == 0 && (v = value())) cfg.batch = static_cast<std::uint32_t>(std::atol(v));
    else if (std::strcmp(arg, "--linger-us") == 0 && (v = value())) cfg.linger_us = std::atol(v);
    else if (std::strcmp(arg, "--queue") == 0 && (v = value())) cfg.queue = static_cast<std::uint32_t>(std::atol(v));
    else if (std::strcmp(arg, "--out") == 0 && (v = value())) cfg.out = v;
    else if (std::strcmp(arg, "--scrape") == 0 && (v = value())) cfg.scrape = v;
    else if (std::strcmp(arg, "--answers-out") == 0 && (v = value())) cfg.answers_out = v;
    else if (std::strcmp(arg, "--connect") == 0 && (v = value())) cfg.connect_port = std::atol(v);
    else if (std::strcmp(arg, "--no-reduce") == 0) cfg.reduce = false;
    else if (std::strcmp(arg, "--no-prefilter") == 0) cfg.prefilter = false;
    else if (std::strcmp(arg, "--index") == 0) cfg.index = true;
    else if (std::strcmp(arg, "--no-index") == 0) cfg.index = false;
    else if (std::strcmp(arg, "--tenants") == 0 && (v = value())) cfg.tenants = static_cast<unsigned>(std::atol(v));
    else if (std::strcmp(arg, "--tenant-skew") == 0 && (v = value())) cfg.tenant_skew = std::atof(v);
    else if (std::strcmp(arg, "--max-sessions") == 0 && (v = value())) cfg.max_sessions = static_cast<std::size_t>(std::atol(v));
    else if (std::strcmp(arg, "--max-resident-mb") == 0 && (v = value())) cfg.max_resident_mb = std::strtoull(v, nullptr, 10);
    else if (std::strcmp(arg, "--spill-dir") == 0 && (v = value())) cfg.spill_dir = v;
    else if (std::strcmp(arg, "--tenants-out") == 0 && (v = value())) cfg.tenants_out = v;
    else return usage();
  }
  if (cfg.tenants != 0 && cfg.connect_port >= 0) {
    std::fprintf(stderr,
                 "parcfl_loadgen: --tenants is in-process only (drop "
                 "--connect)\n");
    return 2;
  }

  const auto workload =
      bench::build_workload(synth::benchmark_spec(cfg.benchmark), cfg.scale);
  if (cfg.requests == 0)
    cfg.requests = static_cast<std::uint64_t>(workload.queries.size());
  const auto requests = build_requests(workload, cfg);
  std::fprintf(stderr,
               "parcfl_loadgen: %s scale %.2f — %u nodes, %u edges, %zu query "
               "vars; %llu requests x 2 phases, %u clients, rate %s\n",
               workload.name.c_str(), cfg.scale, workload.pag.node_count(),
               workload.pag.edge_count(), workload.queries.size(),
               static_cast<unsigned long long>(cfg.requests), cfg.clients,
               cfg.rate > 0 ? (std::to_string(cfg.rate) + "/s").c_str()
                            : "unpaced");

  if (cfg.tenants != 0) return run_tenant_mode(cfg, workload, requests);

  PhaseResult cold, warm;
  bool with_engine = false;

  if (cfg.connect_port >= 0) {
#ifndef _WIN32
    // Replay against a live parcfl_serve: each client owns one connection.
    std::vector<std::unique_ptr<TcpClient>> conns;
    for (unsigned c = 0; c < cfg.clients; ++c) {
      conns.push_back(std::make_unique<TcpClient>(cfg.connect_port));
      if (!conns.back()->ok()) {
        std::fprintf(stderr, "parcfl_loadgen: cannot connect to 127.0.0.1:%ld\n",
                     cfg.connect_port);
        return 1;
      }
    }
    std::atomic<unsigned> conn_ids{0};
    thread_local TcpClient* conn = nullptr;
    auto issue = [&](std::uint64_t i, bool& shed, bool& incomplete) {
      if (conn == nullptr)
        conn = conns[conn_ids.fetch_add(1) % conns.size()].get();
      const std::string reply = conn->roundtrip(format_request_line(requests[i]));
      shed = reply.rfind("shed", 0) == 0 || reply.empty();
      // Definite replies per verb; "unknown" (flow verbs) and "partial"
      // (query) count as incomplete.
      incomplete = reply.rfind("ok complete", 0) != 0 &&
                   reply.rfind("ok no", 0) != 0 &&
                   reply.rfind("ok may", 0) != 0 &&
                   reply.rfind("ok tainted", 0) != 0 &&
                   reply.rfind("ok clean", 0) != 0 &&
                   reply.rfind("ok depends", 0) != 0 &&
                   reply.rfind("ok independent", 0) != 0;
    };
    cold = run_phase(requests, cfg, issue);
    warm = run_phase(requests, cfg, issue);
    if (!cfg.scrape.empty()) {
      std::string exposition;
      if (conns[0]->scrape(exposition))
        write_scrape(cfg.scrape, exposition);
      else
        std::fprintf(stderr, "parcfl_loadgen: metrics scrape failed\n");
    }
    if (!cfg.answers_out.empty() && !dump_answers(requests, cfg)) return 1;
#else
    std::fprintf(stderr, "parcfl_loadgen: --connect is POSIX-only\n");
    return 1;
#endif
  } else {
    service::ServiceOptions options;
    options.session.engine.threads = cfg.threads;
    options.session.engine.solver = bench::solver_options();
    // A resident session amortises every shortcut over an unbounded query
    // stream, so publish aggressively: the paper's τF guards a *batch* from
    // storing shortcuts it will never reuse, a pressure a service lacks.
    options.session.engine.solver.tau_finished = 1;
    options.session.engine.solver.tau_unfinished = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, options.session.engine.solver.budget / 8));
    options.max_batch = cfg.batch;
    options.max_linger = std::chrono::microseconds(cfg.linger_us);
    options.max_queue = cfg.queue;
    options.session.reduce_graph = cfg.reduce;
    options.session.prefilter = cfg.prefilter;
    options.session.index = cfg.index;
    service::QueryService svc(workload.pag, options);
    with_engine = true;
    // Both phases should measure the steady state, not the background
    // solve racing the first requests: wait for the prefilter up front.
    if (cfg.prefilter && svc.session().wait_for_prefilter()) {
      const auto pf = svc.session().prefilter_snapshot();
      std::fprintf(stderr,
                   "parcfl_loadgen: prefilter ready (%llu empty vars, "
                   "solve %.3fs)\n",
                   static_cast<unsigned long long>(pf->stats().empty_vars),
                   pf->stats().solve_seconds);
    }

    auto issue = [&](std::uint64_t i, bool& shed, bool& incomplete) {
      const service::Reply r = svc.call(requests[i]);
      shed = r.status != service::Reply::Status::kOk;
      incomplete = !shed && r.query_status != cfl::QueryStatus::kComplete;
    };
    auto before = svc.session().lifetime_totals();
    cold = run_phase(requests, cfg, issue);
    auto mid = svc.session().lifetime_totals();
    warm = run_phase(requests, cfg, issue);
    auto after = svc.session().lifetime_totals();
    cold.delta = mid.since(before);
    warm.delta = after.since(mid);

    const auto stats = svc.stats();
    std::fprintf(stderr, "parcfl_loadgen: server stats %s\n",
                 stats.to_json().c_str());
    write_scrape(cfg.scrape, svc.metrics_text());
  }

  const double step_ratio =
      warm.delta.traversed_steps == 0
          ? 0.0
          : static_cast<double>(cold.delta.traversed_steps) /
                static_cast<double>(warm.delta.traversed_steps);

  std::FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "parcfl_loadgen: cannot write %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"context\": {%s, \"benchmark\": \"%s\", \"scale\": %.2f, "
               "\"nodes\": %u, \"edges\": %u, \"query_vars\": %zu, "
               "\"requests\": %llu, \"clients\": %u, \"engine_threads\": %u, "
               "\"rate_qps\": %.1f, \"alias_every\": %llu, \"max_batch\": %u, "
               "\"linger_us\": %ld, \"max_queue\": %u, \"transport\": \"%s\"},\n"
               "  \"benchmarks\": [\n",
               bench::json_context_stamp().c_str(), workload.name.c_str(),
               cfg.scale, workload.pag.node_count(),
               workload.pag.edge_count(), workload.queries.size(),
               static_cast<unsigned long long>(cfg.requests), cfg.clients,
               cfg.threads, cfg.rate,
               static_cast<unsigned long long>(cfg.alias_every), cfg.batch,
               cfg.linger_us, cfg.queue,
               cfg.connect_port >= 0 ? "tcp" : "in-process");
  emit_phase(f, "cold", cfg, cold, with_engine);
  std::fprintf(f, ",\n");
  emit_phase(f, "warm", cfg, warm, with_engine);
  if (with_engine) {
    std::fprintf(f,
                 ",\n    {\"name\": \"service/warm_vs_cold\", \"run_type\": "
                 "\"aggregate\", \"step_ratio\": %.3f, "
                 "\"jmp_hit_ratio_cold\": %.4f, \"jmp_hit_ratio_warm\": "
                 "%.4f, \"prefilter_hit_rate\": %.4f}",
                 step_ratio, hit_ratio(cold.delta), hit_ratio(warm.delta),
                 prefilter_hit_rate(warm.delta));
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (cold %llu steps, warm %llu steps, ratio %.2fx)\n",
              cfg.out.c_str(),
              static_cast<unsigned long long>(cold.delta.traversed_steps),
              static_cast<unsigned long long>(warm.delta.traversed_steps),
              step_ratio);
  return 0;
}
