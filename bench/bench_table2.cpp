// Table II reproduction: comparison of parallel pointer analyses.
//
// The paper's Table II is qualitative (algorithm class, on-demand?, context/
// field/flow sensitivity, platform); we reprint it, and back the key
// quantitative claim — demand-driven answers cost a fraction of a
// whole-program solve when only some variables are queried — by running our
// Andersen baseline (the algorithm class of every prior parallel analysis)
// against the demand CFL engine on the same workload.

#include <cinttypes>
#include <cstdio>

#include "andersen/andersen.hpp"
#include "bench_util.hpp"
#include "support/timer.hpp"

using namespace parcfl;
using namespace parcfl::bench;

int main() {
  std::printf("Table II: parallel pointer analyses (paper, qualitative)\n\n");
  std::printf("%-12s %-22s %-9s %-7s %-5s %-5s %-6s %-8s\n", "Analysis",
              "Algorithm", "OnDemand", "Context", "Field", "Flow", "Lang",
              "Platform");
  print_rule(85);
  std::printf("%-12s %-22s %-9s %-7s %-5s %-5s %-6s %-8s\n", "[8]",
              "Andersen", "no", "no", "yes", "no", "C", "CPU");
  std::printf("%-12s %-22s %-9s %-7s %-5s %-5s %-6s %-8s\n", "[3]",
              "Andersen", "no", "no", "no", "part", "Java", "CPU");
  std::printf("%-12s %-22s %-9s %-7s %-5s %-5s %-6s %-8s\n", "[7]",
              "Andersen", "no", "no", "yes", "no", "C", "GPU");
  std::printf("%-12s %-22s %-9s %-7s %-5s %-5s %-6s %-8s\n", "[14]",
              "Andersen", "no", "yes", "no", "no", "C", "CPU");
  std::printf("%-12s %-22s %-9s %-7s %-5s %-5s %-6s %-8s\n", "[9]",
              "Andersen", "no", "no", "yes", "yes", "C", "CPU");
  std::printf("%-12s %-22s %-9s %-7s %-5s %-5s %-6s %-8s\n", "[10]",
              "Andersen", "no", "no", "yes", "yes", "C", "GPU");
  std::printf("%-12s %-22s %-9s %-7s %-5s %-5s %-6s %-8s\n", "[20]",
              "Andersen", "no", "no", "yes", "no", "C", "CPU-GPU");
  std::printf("%-12s %-22s %-9s %-7s %-5s %-5s %-6s %-8s\n", "this work",
              "CFL-Reachability", "yes", "yes", "yes", "no", "Java", "CPU");

  std::printf("\nQuantitative backing (this reproduction): whole-program "
              "Andersen vs demand CFL\n\n");
  std::printf("%-15s %12s %12s %14s %14s %14s\n", "Benchmark", "Andersen(s)",
              "CFL-all(s)", "CFL-10pct(s)", "CFL-1pct(s)", "per-query(us)");
  print_rule(90);

  const double s = scale();
  for (const char* name : {"_209_db", "avrora", "pmd", "sunflow"}) {
    const Workload w = build_workload(synth::benchmark_spec(name), s);

    support::WallTimer andersen_timer;
    const auto andersen_result = andersen::solve(w.pag);
    const double andersen_s = andersen_timer.seconds();
    (void)andersen_result;

    const auto all = run_mode(w, cfl::Mode::kDataSharingScheduling, 1);

    auto subset = [&](double fraction) {
      const std::size_t n =
          std::max<std::size_t>(1, static_cast<std::size_t>(
                                       w.queries.size() * fraction));
      const std::vector<pag::NodeId> some(w.queries.begin(),
                                          w.queries.begin() + n);
      cfl::EngineOptions o;
      o.mode = cfl::Mode::kDataSharingScheduling;
      o.threads = 1;
      o.solver = solver_options();
      return cfl::Engine(w.pag, o).run(some).wall_seconds;
    };

    const double ten = subset(0.10);
    const double one = subset(0.01);
    std::printf("%-15s %12.4f %12.4f %14.4f %14.4f %14.1f\n", name, andersen_s,
                all.wall_seconds, ten, one,
                w.queries.empty()
                    ? 0.0
                    : 1e6 * all.wall_seconds / static_cast<double>(w.queries.size()));
  }

  std::printf("\nExpected shape: demand CFL answers small query subsets far "
              "below the whole-program solve;\nthe full batch may cost more "
              "than one Andersen pass (the price of context-sensitivity),\n"
              "which is exactly why the paper parallelises it.\n");
  return 0;
}
