// bench_prefilter — the two-stage pre-solve pipeline study (DESIGN.md §11).
//
// Stage A (offline reduction): how many parenthesis edges the productive-bit
// pass removes, what that costs, and how many traversal steps the sequential
// engine saves on the reduced graph — the answer-preserving half of the
// pipeline.
//
// Stage B (Andersen prefilter): cost to solve the bitset Andersen over the
// reduced graph (scratch and incremental after a small add-only delta), the
// per-probe cost of the definite-no predicates, and the coverage headline:
// of the variable pairs whose Andersen points-to sets are truly disjoint
// (ground truth on the faithful graph), what fraction the prefilter's
// no_alias answers without ever waking the solver.
//
// End to end: a resident service::Session with the pipeline on vs off, cold
// and warm, points-to q/s and traversed steps — the serving-path delta the
// whole feature exists for.
//
// Results go to BENCH_prefilter.json (context object + benchmarks array,
// same schema style as BENCH_update.json).
//
//   bench_prefilter [--out FILE]     (PARCFL_SCALE / PARCFL_BUDGET /
//                                     PARCFL_THREADS apply)

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "andersen/andersen.hpp"
#include "andersen/prefilter.hpp"
#include "bench_util.hpp"
#include "pag/delta.hpp"
#include "pag/reduce.hpp"
#include "service/session.hpp"
#include "support/rng.hpp"

using namespace parcfl;
using namespace parcfl::bench;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// A small add-only change (new locals wired into existing flows plus one
/// fresh allocation) — the fast path the incremental rebuild targets.
pag::Delta add_only_delta(const pag::Pag& pag, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<pag::NodeId> vars;
  for (std::uint32_t n = 0; n < pag.node_count(); ++n)
    if (pag.is_variable(pag::NodeId(n))) vars.push_back(pag::NodeId(n));

  pag::Delta d(pag);
  if (vars.empty()) return d;
  auto pick = [&] { return vars[rng.below(vars.size())]; };
  for (int i = 0; i < 4; ++i) {
    const pag::NodeId src = pick();
    const pag::NodeId t = d.add_node(pag::NodeKind::kLocal, pag.node(src).type,
                                     pag.node(src).method);
    d.add_edge(pag::EdgeKind::kAssignLocal, t, src);
  }
  const pag::NodeId anchor = pick();
  const pag::NodeId o = d.add_node(pag::NodeKind::kObject,
                                   pag.node(anchor).type,
                                   pag.node(anchor).method);
  d.add_edge(pag::EdgeKind::kNew, anchor, o);
  return d;
}

struct ServingArm {
  double cold_qps = 0.0;
  double warm_qps = 0.0;
  std::uint64_t cold_steps = 0;
  std::uint64_t warm_steps = 0;
};

ServingArm run_serving(const Workload& w, bool pipeline) {
  service::Session::Options so;
  so.engine.mode = cfl::Mode::kDataSharingScheduling;
  so.engine.threads = threads();
  so.engine.solver = solver_options();
  so.reduce_graph = pipeline;
  so.prefilter = pipeline;
  service::Session session(w.pag, so);
  if (pipeline) session.wait_for_prefilter();

  std::vector<service::Session::Item> items;
  items.reserve(w.queries.size());
  for (const pag::NodeId q : w.queries) items.push_back({q, 0});

  ServingArm arm;
  const auto cold = session.run_batch(items);
  arm.cold_steps = cold.delta.traversed_steps;
  arm.cold_qps = cold.wall_seconds > 0
                     ? static_cast<double>(items.size()) / cold.wall_seconds
                     : 0.0;
  const auto warm = session.run_batch(items);
  arm.warm_steps = warm.delta.traversed_steps;
  arm.warm_qps = warm.wall_seconds > 0
                     ? static_cast<double>(items.size()) / warm.wall_seconds
                     : 0.0;
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_prefilter.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_prefilter [--out FILE]\n");
      return 2;
    }
  }

  const double s = scale();
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_prefilter: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"context\": {%s, \"scale\": %.2f, \"budget\": %" PRIu64
               ", \"threads\": %u},\n  \"benchmarks\": [\n",
               json_context_stamp().c_str(), s, budget(), threads());

  std::printf("Pre-solve pipeline study, scale=%.2f, threads=%u\n\n", s,
              threads());

  bool first = true;
  int failures = 0;
  for (const char* name : {"_202_jess", "fop"}) {
    const Workload w = build_workload(synth::benchmark_spec(name), s);
    std::printf("%s: %u nodes, %u edges, %zu queries\n", name,
                w.pag.node_count(), w.pag.edge_count(), w.queries.size());

    // ---- Stage A: reduction --------------------------------------------
    pag::ReduceStats rstats;
    const auto t_reduce = Clock::now();
    const pag::Pag reduced = pag::reduce_unmatched_parens(w.pag, &rstats);
    const double reduce_ms = ms_since(t_reduce);
    const double edge_ratio =
        rstats.edges_before == 0
            ? 0.0
            : static_cast<double>(rstats.edges_removed) /
                  static_cast<double>(rstats.edges_before);

    const auto seq_full = run_mode(w, cfl::Mode::kSequential, 1);
    Workload wr;  // same queries over the reduced graph
    wr.pag = reduced;
    wr.queries = w.queries;
    const auto seq_red = run_mode(wr, cfl::Mode::kSequential, 1);
    const double step_ratio =
        seq_full.totals.traversed_steps == 0
            ? 1.0
            : static_cast<double>(seq_red.totals.traversed_steps) /
                  static_cast<double>(seq_full.totals.traversed_steps);
    if (seq_red.totals.traversed_steps > seq_full.totals.traversed_steps)
      ++failures;  // reduction must never add work

    std::printf(
        "  reduce: %u -> %u edges (-%.1f%%) in %.2f ms; seq steps %" PRIu64
        " -> %" PRIu64 " (%.3fx)\n",
        rstats.edges_before, rstats.edges_after(), 100.0 * edge_ratio,
        reduce_ms, seq_full.totals.traversed_steps,
        seq_red.totals.traversed_steps, step_ratio);

    // ---- Stage B: prefilter build + probes -----------------------------
    const auto t_build = Clock::now();
    const auto pf = andersen::Prefilter::build(reduced);
    const double build_ms = ms_since(t_build);

    const pag::Delta delta = add_only_delta(reduced, 0xf11735u);
    std::string error;
    const auto next = pag::apply_delta(reduced, delta, nullptr, &error);
    double incr_ms = 0.0, scratch2_ms = 0.0;
    if (next.has_value()) {
      const auto t_incr = Clock::now();
      const auto incr = andersen::Prefilter::build_incremental(*next, pf);
      incr_ms = ms_since(t_incr);
      const auto t_s2 = Clock::now();
      (void)andersen::Prefilter::build(*next);
      scratch2_ms = ms_since(t_s2);
      if (!incr.stats().incremental) ++failures;
    } else {
      std::fprintf(stderr, "bench_prefilter: delta failed on %s: %s\n", name,
                   error.c_str());
      ++failures;
    }

    // Probe cost + coverage over sampled variable pairs. Ground truth is
    // Andersen on the *faithful* graph: a pair with disjoint sets there is a
    // true no-alias the serving path should answer for free.
    const auto truth = andersen::solve(w.pag);
    support::Rng rng(0xa11a5u);
    const std::size_t kPairs = 4000;
    std::vector<std::pair<pag::NodeId, pag::NodeId>> pairs;
    pairs.reserve(kPairs);
    for (std::size_t i = 0; i < kPairs; ++i)
      pairs.emplace_back(w.queries[rng.below(w.queries.size())],
                         w.queries[rng.below(w.queries.size())]);

    std::uint64_t true_no_alias = 0, caught = 0, pf_no_alias = 0;
    for (const auto& [a, b] : pairs) {
      const auto& pa = truth.points_to(a);
      const auto& pb = truth.points_to(b);
      std::vector<std::uint32_t> common;
      std::set_intersection(pa.begin(), pa.end(), pb.begin(), pb.end(),
                            std::back_inserter(common));
      const bool hit = pf.no_alias(a, b);
      pf_no_alias += hit;
      if (common.empty()) {
        ++true_no_alias;
        caught += hit;
      } else if (hit) {
        ++failures;  // unsound definite answer — must never happen
      }
    }
    const double coverage =
        true_no_alias == 0
            ? 1.0
            : static_cast<double>(caught) / static_cast<double>(true_no_alias);
    if (true_no_alias > 0 && coverage < 0.5)
      ++failures;  // the acceptance bar: majority of true-no-alias answered

    // ns per probe, measured over the sampled pairs many times.
    const int kReps = 200;
    const auto t_probe = Clock::now();
    std::uint64_t sink = 0;
    for (int r = 0; r < kReps; ++r)
      for (const auto& [a, b] : pairs) sink += pf.no_alias(a, b);
    const double no_alias_ns = ms_since(t_probe) * 1e6 /
                               static_cast<double>(kReps * pairs.size());
    const auto t_empty = Clock::now();
    for (int r = 0; r < kReps; ++r)
      for (const auto& [a, b] : pairs) sink += pf.pts_empty(a) + pf.pts_empty(b);
    const double pts_empty_ns = ms_since(t_empty) * 1e6 /
                                static_cast<double>(2 * kReps * pairs.size());
    if (sink == UINT64_MAX) std::printf("unreachable\n");  // keep the loops

    std::printf(
        "  prefilter: build %.2f ms (incremental %.2f ms, scratch %.2f ms), "
        "%" PRIu64 " empty vars, %.1f ns/no_alias, %.1f ns/pts_empty\n",
        build_ms, incr_ms, scratch2_ms, pf.stats().empty_vars, no_alias_ns,
        pts_empty_ns);
    std::printf(
        "  coverage: %" PRIu64 "/%zu sampled pairs truly no-alias, prefilter "
        "caught %" PRIu64 " (%.1f%%)\n",
        true_no_alias, pairs.size(), caught, 100.0 * coverage);

    // ---- End to end: serving path on vs off ----------------------------
    const ServingArm off = run_serving(w, /*pipeline=*/false);
    const ServingArm on = run_serving(w, /*pipeline=*/true);
    const double warm_delta =
        off.warm_qps > 0 ? (on.warm_qps - off.warm_qps) / off.warm_qps : 0.0;
    if (on.warm_steps > off.warm_steps) ++failures;

    std::printf(
        "  serving: cold %.0f -> %.0f q/s, warm %.0f -> %.0f q/s (%+.1f%%), "
        "warm steps %" PRIu64 " -> %" PRIu64 "\n\n",
        off.cold_qps, on.cold_qps, off.warm_qps, on.warm_qps,
        100.0 * warm_delta, off.warm_steps, on.warm_steps);

    std::fprintf(
        f,
        "%s    {\"name\": \"prefilter/%s/reduce\", \"edges_before\": %u, "
        "\"edges_removed\": %u, \"reduction_ratio\": %.4f, \"reduce_ms\": "
        "%.3f, \"seq_steps_full\": %" PRIu64 ", \"seq_steps_reduced\": %" PRIu64
        ", \"step_ratio\": %.4f},\n"
        "    {\"name\": \"prefilter/%s/build\", \"build_ms\": %.3f, "
        "\"incremental_ms\": %.3f, \"incremental_scratch_ms\": %.3f, "
        "\"objects\": %u, \"empty_vars\": %" PRIu64 ", \"memory_bytes\": %zu},\n"
        "    {\"name\": \"prefilter/%s/probe\", \"pairs\": %zu, "
        "\"no_alias_ns\": %.2f, \"pts_empty_ns\": %.2f, \"no_alias_rate\": "
        "%.4f, \"true_no_alias\": %" PRIu64 ", \"caught\": %" PRIu64
        ", \"coverage\": %.4f},\n"
        "    {\"name\": \"prefilter/%s/serving\", \"cold_qps_off\": %.0f, "
        "\"cold_qps_on\": %.0f, \"warm_qps_off\": %.0f, \"warm_qps_on\": "
        "%.0f, \"warm_qps_delta\": %.4f, \"warm_steps_off\": %" PRIu64
        ", \"warm_steps_on\": %" PRIu64 "}",
        first ? "" : ",\n", name, rstats.edges_before, rstats.edges_removed,
        edge_ratio, reduce_ms, seq_full.totals.traversed_steps,
        seq_red.totals.traversed_steps, step_ratio, name, build_ms, incr_ms,
        scratch2_ms, pf.stats().objects, pf.stats().empty_vars,
        pf.memory_bytes(), name, pairs.size(), no_alias_ns, pts_empty_ns,
        static_cast<double>(pf_no_alias) / static_cast<double>(pairs.size()),
        true_no_alias, caught, coverage, name, off.cold_qps, on.cold_qps,
        off.warm_qps, on.warm_qps, warm_delta, off.warm_steps, on.warm_steps);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}
