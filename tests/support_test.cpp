// Unit tests for the support substrate: rng, strong ids, union-find, SCC,
// arena, sharded map, thread pool, histograms, memory meter.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "support/arena.hpp"
#include "support/bitset_ops.hpp"
#include "support/mem_meter.hpp"
#include "support/rng.hpp"
#include "support/scc.hpp"
#include "support/sharded_map.hpp"
#include "support/stats.hpp"
#include "support/strong_id.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/union_find.hpp"

namespace parcfl::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

struct FooTag {};
using FooId = StrongId<FooTag>;

TEST(StrongId, InvalidByDefault) {
  FooId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FooId::invalid());
}

TEST(StrongId, ComparesByValue) {
  EXPECT_EQ(FooId(3), FooId(3));
  EXPECT_NE(FooId(3), FooId(4));
  EXPECT_LT(FooId(3), FooId(4));
}

TEST(StrongId, Hashable) {
  std::set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 100; ++i)
    hashes.insert(std::hash<FooId>{}(FooId(i)));
  EXPECT_GT(hashes.size(), 95u);  // no mass collisions on dense ids
}

TEST(UnionFind, BasicUnion) {
  UnionFind uf(10);
  EXPECT_FALSE(uf.same(1, 2));
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(1, 2));
  uf.unite(2, 3);
  EXPECT_TRUE(uf.same(1, 3));
  EXPECT_FALSE(uf.same(1, 4));
  EXPECT_EQ(uf.set_size(1), 3u);
  EXPECT_EQ(uf.set_size(4), 1u);
}

TEST(UnionFind, SelfUnionIsNoop) {
  UnionFind uf(4);
  uf.unite(2, 2);
  EXPECT_EQ(uf.set_size(2), 1u);
}

TEST(Scc, SingleCycle) {
  // 0 -> 1 -> 2 -> 0
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{{0, 1}, {1, 2}, {2, 0}};
  const auto g = CsrGraph::from_edges(3, edges);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, 1u);
}

TEST(Scc, ChainHasSingletons) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{{0, 1}, {1, 2}, {2, 3}};
  const auto g = CsrGraph::from_edges(4, edges);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, 4u);
  // Reverse topological numbering: successors have smaller component ids.
  EXPECT_GT(scc.component_of[0], scc.component_of[1]);
  EXPECT_GT(scc.component_of[1], scc.component_of[2]);
  EXPECT_GT(scc.component_of[2], scc.component_of[3]);
}

TEST(Scc, TwoCyclesAndBridge) {
  // {0,1} cycle -> {2,3} cycle, plus isolated 4.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}};
  const auto g = CsrGraph::from_edges(5, edges);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, 3u);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[2], scc.component_of[3]);
  EXPECT_NE(scc.component_of[0], scc.component_of[2]);
  EXPECT_GT(scc.component_of[0], scc.component_of[2]);  // source comp is later
}

TEST(Scc, CondenseDropsSelfLoopsAndDuplicates) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 0}, {0, 2}, {1, 2}, {1, 2}};
  const auto g = CsrGraph::from_edges(3, edges);
  const auto scc = strongly_connected_components(g);
  const auto dag = condense(g, scc);
  EXPECT_EQ(dag.vertex_count(), 2u);
  // Exactly one edge from the {0,1} component to {2}.
  std::size_t total_edges = dag.targets.size();
  EXPECT_EQ(total_edges, 1u);
}

TEST(Scc, TopologicalOrderOnDag) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 2}, {1, 2}, {2, 3}};
  const auto g = CsrGraph::from_edges(4, edges);
  const auto order = topological_order(g);
  std::vector<std::uint32_t> pos(4);
  for (std::uint32_t i = 0; i < 4; ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[2]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Scc, LargeGraphNoRecursionOverflow) {
  // A 100k-node chain would overflow a recursive Tarjan; the iterative one
  // must handle it.
  const std::uint32_t n = 100'000;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  const auto g = CsrGraph::from_edges(n, edges);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.component_count, n);
}

TEST(Arena, AllocatesAlignedStableMemory) {
  Arena arena(128);  // small blocks to force growth
  std::vector<std::uint64_t*> ptrs;
  for (int i = 0; i < 100; ++i) {
    auto* p = arena.create<std::uint64_t>(static_cast<std::uint64_t>(i));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t), 0u);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*ptrs[i], static_cast<std::uint64_t>(i));
  EXPECT_GE(arena.allocated_bytes(), 100 * sizeof(std::uint64_t));
}

TEST(Arena, CopyArray) {
  Arena arena;
  const std::uint32_t src[] = {1, 2, 3, 4};
  const std::uint32_t* copy = arena.copy_array(src, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(copy[i], src[i]);
  EXPECT_EQ(arena.copy_array<std::uint32_t>(nullptr, 0), nullptr);
}

TEST(ShardedMap, InsertIfAbsentFirstWins) {
  ShardedMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.insert_if_absent(42, 1));
  EXPECT_FALSE(map.insert_if_absent(42, 2));
  int out = 0;
  EXPECT_TRUE(map.find_copy(42, out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(map.find_copy(43, out));
}

TEST(ShardedMap, UpsertCreatesDefaultAndCanDecline) {
  ShardedMap<std::uint64_t, int> map;
  // Absent key: fn sees a default-constructed value; commit publishes it.
  EXPECT_TRUE(map.upsert(7, [](int& v) {
    v += 5;
    return true;
  }));
  // Present key: fn sees the stored value and rewrites it copy-on-write.
  EXPECT_TRUE(map.upsert(7, [](int& v) {
    v += 5;
    return true;
  }));
  int out = 0;
  ASSERT_TRUE(map.find_copy(7, out));
  EXPECT_EQ(out, 10);
  // Declined commits leave the map untouched (first-wins building block).
  EXPECT_FALSE(map.upsert(7, [](int& v) {
    v = 99;
    return false;
  }));
  EXPECT_FALSE(map.upsert(8, [](int&) { return false; }));
  ASSERT_TRUE(map.find_copy(7, out));
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(map.contains(8));
  EXPECT_EQ(map.size(), 1u);
}

TEST(ShardedMap, GetOrInsertRunsMakeOnlyOnce) {
  ShardedMap<std::uint64_t, std::uint32_t> map;
  int calls = 0;
  EXPECT_EQ(map.get_or_insert(11, [&] {
    ++calls;
    return 77u;
  }),
            77u);
  EXPECT_EQ(map.get_or_insert(11, [&] {
    ++calls;
    return 88u;
  }),
            77u);  // first wins; make() not called again
  EXPECT_EQ(calls, 1);
}

TEST(ShardedMap, SizeAndClearAndForEach) {
  ShardedMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 100; ++k) map.insert_if_absent(k, static_cast<int>(k));
  EXPECT_EQ(map.size(), 100u);
  std::uint64_t sum = 0;
  map.for_each_copy([&](std::uint64_t, int v) { sum += static_cast<std::uint64_t>(v); });
  EXPECT_EQ(sum, 4950u);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
}

TEST(ShardedMap, ConcurrentFirstWinsIsConsistent) {
  ShardedMap<std::uint64_t, int> map;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 2000;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t k = 0; k < kKeys; ++k)
        if (map.insert_if_absent(k, t)) winners.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  // Exactly one insert succeeded per key, and every key is present.
  EXPECT_EQ(winners.load(), static_cast<int>(kKeys));
  EXPECT_EQ(map.size(), kKeys);
}

TEST(ThreadPool, ParallelForCoversAllUnits) {
  ThreadPool pool(4);
  constexpr std::uint64_t kUnits = 10'000;
  std::vector<std::atomic<int>> hits(kUnits);
  const std::function<void(unsigned, std::uint64_t)> body =
      [&](unsigned, std::uint64_t i) { hits[i].fetch_add(1); };
  pool.parallel_for(kUnits, body);
  for (std::uint64_t i = 0; i < kUnits; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  const std::function<void(unsigned, std::uint64_t)> body =
      [&](unsigned worker, std::uint64_t) {
        if (worker >= 3) bad.store(true);
      };
  pool.parallel_for(1000, body);
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, SequentialParallelForsReuseWorkers) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::uint64_t> sum{0};
    const std::function<void(unsigned, std::uint64_t)> body =
        [&](unsigned, std::uint64_t i) { sum.fetch_add(i); };
    pool.parallel_for(100, body);
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, EmptyForReturnsImmediately) {
  ThreadPool pool(2);
  const std::function<void(unsigned, std::uint64_t)> body =
      [](unsigned, std::uint64_t) { FAIL(); };
  pool.parallel_for(0, body);
}

TEST(ThreadPool, MaxWorkersCapsAdmissionButCoversAllUnits) {
  ThreadPool pool(8);
  for (const unsigned cap : {1u, 2u, 8u, 100u}) {
    constexpr std::uint64_t kUnits = 4000;
    std::vector<std::atomic<int>> hits(kUnits);
    std::array<std::atomic<int>, 8> used{};
    const std::function<void(unsigned, std::uint64_t)> body =
        [&](unsigned worker, std::uint64_t i) {
          hits[i].fetch_add(1);
          used[worker].store(1);
        };
    pool.parallel_for(kUnits, body, cap);
    for (std::uint64_t i = 0; i < kUnits; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "cap=" << cap;
    unsigned distinct = 0;
    for (auto& u : used) distinct += static_cast<unsigned>(u.load());
    // A cap above thread_count clamps to the pool size; fewer may show up
    // (a busy worker can miss a short job entirely), never more.
    EXPECT_LE(distinct, std::min(cap, 8u)) << "cap=" << cap;
  }
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(Pow2Histogram, Bucketing) {
  Pow2Histogram h;
  h.add(0);   // bucket 0
  h.add(1);   // bucket 0
  h.add(2);   // bucket 1
  h.add(3);   // bucket 1
  h.add(4);   // bucket 2
  h.add(1024);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.total_count(), 6u);
}

TEST(Pow2Histogram, MergeAndWeight) {
  Pow2Histogram a, b;
  a.add(5, 2);
  b.add(5, 3);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 5u);
  EXPECT_EQ(a.total_weight(), 25u);
}

TEST(QueryCounters, MergeSums) {
  QueryCounters a, b;
  a.queries = 3;
  a.charged_steps = 10;
  b.queries = 4;
  b.charged_steps = 7;
  b.early_terminations = 2;
  a.merge(b);
  EXPECT_EQ(a.queries, 7u);
  EXPECT_EQ(a.charged_steps, 17u);
  EXPECT_EQ(a.early_terminations, 2u);
}

TEST(MemMeter, RssReadable) {
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);  // sanity, not exact
}

// Timing audit (PR 5): every clock in the codebase is steady_clock — the
// latency percentiles, slow-query log and trace timestamps must never jump
// backwards with an NTP step the way system_clock can. This pins the timer's
// clock choice and its monotonicity under rapid re-reads.
TEST(WallTimer, IsMonotonicSteadyClock) {
  static_assert(std::chrono::steady_clock::is_steady,
                "steady_clock must be steady (the whole point)");
  WallTimer timer;
  double last = timer.seconds();
  EXPECT_GE(last, 0.0);
  for (int i = 0; i < 10'000; ++i) {
    const double now = timer.seconds();
    ASSERT_GE(now, last) << "timer went backwards at iteration " << i;
    last = now;
  }
  const std::uint64_t n1 = timer.nanos();
  const std::uint64_t n2 = timer.nanos();
  EXPECT_GE(n2, n1);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);  // reset re-bases the origin
}


TEST(BitsetOps, StrideIsCacheLinePadded) {
  EXPECT_EQ(bitset_stride_for(0), 0u);
  EXPECT_EQ(bitset_stride_for(1), kBitsetWordAlign);
  EXPECT_EQ(bitset_stride_for(512), kBitsetWordAlign);
  EXPECT_EQ(bitset_stride_for(513), 2 * kBitsetWordAlign);
  for (std::uint32_t bits = 1; bits < 4000; bits += 97)
    EXPECT_EQ(bitset_stride_for(bits) % kBitsetWordAlign, 0u) << bits;
}

// The union/intersect kernels have an AVX2 and a portable path; random rows
// checked word-by-word against the obvious scalar reference catch either one
// drifting (notably the "changed" detection, which the prefilter worklist
// depends on for termination and completeness).
TEST(BitsetOps, KernelsMatchScalarReferenceOnRandomRows) {
  Rng rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t words =
        kBitsetWordAlign * (1 + rng.below(4));  // 8..32 words
    std::vector<std::uint64_t> a(words), b(words);
    for (std::uint32_t w = 0; w < words; ++w) {
      // Sparse rows so empty intersections actually occur.
      a[w] = rng.chance(0.3) ? rng.next_u64() & rng.next_u64() & rng.next_u64() : 0;
      b[w] = rng.chance(0.3) ? rng.next_u64() & rng.next_u64() & rng.next_u64() : 0;
    }

    bool want_intersects = false;
    bool want_any = false;
    std::uint64_t want_count = 0;
    for (std::uint32_t w = 0; w < words; ++w) {
      want_intersects |= (a[w] & b[w]) != 0;
      want_any |= a[w] != 0;
      want_count += static_cast<std::uint64_t>(__builtin_popcountll(a[w]));
    }
    EXPECT_EQ(bitset_intersects(a.data(), b.data(), words), want_intersects);
    EXPECT_EQ(bitset_any(a.data(), words), want_any);
    EXPECT_EQ(bitset_count(a.data(), words), want_count);

    std::vector<std::uint64_t> want_union(words);
    bool want_changed = false;
    for (std::uint32_t w = 0; w < words; ++w) {
      want_union[w] = a[w] | b[w];
      want_changed |= want_union[w] != a[w];
    }
    std::vector<std::uint64_t> dst = a;
    EXPECT_EQ(bitset_union_into(dst.data(), b.data(), words), want_changed);
    EXPECT_EQ(dst, want_union);
    // Second union is a no-op by idempotence.
    EXPECT_FALSE(bitset_union_into(dst.data(), b.data(), words));
    EXPECT_EQ(dst, want_union);
  }
}

TEST(BitsetOps, TestAndSetRoundTrip) {
  const std::uint32_t words = bitset_stride_for(300);
  std::vector<std::uint64_t> row(words, 0);
  for (const std::uint32_t bit : {0u, 1u, 63u, 64u, 127u, 255u, 299u}) {
    EXPECT_FALSE(bitset_test(row.data(), bit));
    bitset_set(row.data(), bit);
    EXPECT_TRUE(bitset_test(row.data(), bit));
  }
  EXPECT_EQ(bitset_count(row.data(), words), 7u);
}

TEST(MemMeter, TallyTracksPeak) {
  MemTally::reset();
  MemTally::note_alloc(1000);
  MemTally::note_alloc(500);
  MemTally::note_free(800);
  EXPECT_EQ(MemTally::current_bytes(), 700u);
  EXPECT_EQ(MemTally::peak_bytes(), 1500u);
  MemTally::reset();
}

}  // namespace
}  // namespace parcfl::support
