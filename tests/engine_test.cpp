// Engine tests: the four paper configurations (SeqCFL, naive, D, DQ) agree on
// answers, statistics are consistent, and multi-threaded runs are safe.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cfl/engine.hpp"
#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "synth/generator.hpp"
#include "test_util.hpp"

namespace parcfl::cfl {
namespace {

using pag::NodeId;

struct Workload {
  pag::Pag pag;
  std::vector<NodeId> queries;
};

Workload container_workload(std::uint64_t seed = 21) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 12;
  cfg.library_methods = 12;
  cfg.containers = 3;
  cfg.container_use_blocks = 10;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

EngineOptions options_for(Mode mode, unsigned threads) {
  EngineOptions o;
  o.mode = mode;
  o.threads = threads;
  o.solver.budget = 200'000;
  // The paper's τF=100/τU=10000 are tuned for full-size benchmarks; scale
  // them down for these miniature workloads so sharing has something to do.
  o.solver.tau_finished = 10;
  o.solver.tau_unfinished = 100;
  return o;
}

std::map<std::uint32_t, std::uint32_t> outcome_map(const EngineResult& r) {
  std::map<std::uint32_t, std::uint32_t> m;
  for (const QueryOutcome& qo : r.outcomes) m[qo.var.value()] = qo.object_count;
  return m;
}

TEST(Engine, ModeNames) {
  EXPECT_STREQ(to_string(Mode::kSequential), "SeqCFL");
  EXPECT_STREQ(to_string(Mode::kNaive), "ParCFL_naive");
  EXPECT_STREQ(to_string(Mode::kDataSharing), "ParCFL_D");
  EXPECT_STREQ(to_string(Mode::kDataSharingScheduling), "ParCFL_DQ");
}

TEST(Engine, AllModesAgreeOnAnswers) {
  const auto w = container_workload();
  const auto seq = Engine(w.pag, options_for(Mode::kSequential, 1)).run(w.queries);

  for (const Mode mode :
       {Mode::kNaive, Mode::kDataSharing, Mode::kDataSharingScheduling}) {
    for (const unsigned threads : {1u, 4u}) {
      const auto result = Engine(w.pag, options_for(mode, threads)).run(w.queries);
      EXPECT_EQ(outcome_map(result), outcome_map(seq))
          << to_string(mode) << " threads=" << threads;
    }
  }
}

TEST(Engine, TotalsAreConsistent) {
  const auto w = container_workload();
  const auto r = Engine(w.pag, options_for(Mode::kDataSharing, 4)).run(w.queries);

  EXPECT_EQ(r.totals.queries, w.queries.size());
  EXPECT_EQ(r.outcomes.size(), w.queries.size());
  std::uint64_t sum = 0;
  for (const std::uint64_t t : r.per_thread_traversed) sum += t;
  EXPECT_EQ(sum, r.totals.traversed_steps);
  EXPECT_LE(r.makespan_steps(), r.totals.traversed_steps);
  EXPECT_GE(r.makespan_steps() * 4, r.totals.traversed_steps);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(Engine, SequentialBaselineNeverShares) {
  const auto w = container_workload();
  const auto r = Engine(w.pag, options_for(Mode::kSequential, 8)).run(w.queries);
  EXPECT_EQ(r.per_thread_traversed.size(), 1u);  // threads forced to 1
  EXPECT_EQ(r.totals.saved_steps, 0u);
  EXPECT_EQ(r.jmp_stats.total_jmps(), 0u);
  EXPECT_EQ(r.totals.charged_steps, r.totals.traversed_steps);
}

TEST(Engine, NaiveSharesNothingButRunsParallel) {
  const auto w = container_workload();
  const auto r = Engine(w.pag, options_for(Mode::kNaive, 4)).run(w.queries);
  EXPECT_EQ(r.totals.saved_steps, 0u);
  EXPECT_EQ(r.jmp_stats.total_jmps(), 0u);
  EXPECT_EQ(r.per_thread_traversed.size(), 4u);
}

TEST(Engine, DataSharingSavesSteps) {
  const auto w = container_workload();
  const auto seq = Engine(w.pag, options_for(Mode::kSequential, 1)).run(w.queries);
  const auto d = Engine(w.pag, options_for(Mode::kDataSharing, 1)).run(w.queries);

  // The container workload re-traverses shared heap paths across queries, so
  // sharing must reduce actual work below the sequential baseline.
  EXPECT_GT(d.totals.saved_steps, 0u);
  EXPECT_GT(d.jmp_stats.total_jmps(), 0u);
  EXPECT_LT(d.totals.traversed_steps, seq.totals.traversed_steps);
}

TEST(BatchRunner, SecondBatchAgainstWarmStoreTraversesStrictlyFewerSteps) {
  const auto w = container_workload();
  const EngineOptions o = options_for(Mode::kDataSharing, 4);
  ContextTable contexts;
  JmpStore store;
  BatchRunner runner(w.pag, o, contexts, store);

  const auto first = runner.run(w.queries);
  const auto second = runner.run(w.queries);

  // Counters are per-batch deltas; both batches did answer every query.
  EXPECT_EQ(first.totals.queries, w.queries.size());
  EXPECT_EQ(second.totals.queries, w.queries.size());

  // The second batch rides the jmp shortcuts the first one published into
  // the shared store, so it must do strictly less real work.
  EXPECT_GT(first.totals.traversed_steps, 0u);
  EXPECT_LT(second.totals.traversed_steps, first.totals.traversed_steps);
  EXPECT_GT(second.totals.jmps_taken, 0u);

  // Same store, same answers.
  EXPECT_EQ(outcome_map(second), outcome_map(first));

  // Lifetime totals accumulate across both batches.
  const auto lifetime = runner.lifetime_totals();
  EXPECT_EQ(lifetime.traversed_steps,
            first.totals.traversed_steps + second.totals.traversed_steps);
}

TEST(Engine, SchedulingReportsGroupStats) {
  const auto w = container_workload();
  const auto dq =
      Engine(w.pag, options_for(Mode::kDataSharingScheduling, 2)).run(w.queries);
  EXPECT_GT(dq.group_count, 0u);
  EXPECT_GT(dq.mean_group_size, 0.0);
  // DQ schedules all queries exactly once.
  EXPECT_EQ(dq.outcomes.size(), w.queries.size());
  std::vector<std::uint32_t> got;
  for (const auto& qo : dq.outcomes) got.push_back(qo.var.value());
  std::sort(got.begin(), got.end());
  std::vector<std::uint32_t> want;
  for (const NodeId q : w.queries) want.push_back(q.value());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(Engine, SingleThreadSequentialIsDeterministic) {
  const auto w = container_workload();
  const auto a = Engine(w.pag, options_for(Mode::kSequential, 1)).run(w.queries);
  const auto b = Engine(w.pag, options_for(Mode::kSequential, 1)).run(w.queries);
  EXPECT_EQ(outcome_map(a), outcome_map(b));
  EXPECT_EQ(a.totals.traversed_steps, b.totals.traversed_steps);
  EXPECT_EQ(a.totals.charged_steps, b.totals.charged_steps);
}

TEST(Engine, ManyThreadsMoreThanUnitsIsSafe) {
  const auto w = container_workload();
  std::vector<NodeId> few(w.queries.begin(),
                          w.queries.begin() + std::min<std::size_t>(3, w.queries.size()));
  const auto r = Engine(w.pag, options_for(Mode::kDataSharing, 16)).run(few);
  EXPECT_EQ(r.totals.queries, few.size());
}

TEST(Engine, EmptyQueryListIsFine) {
  const auto w = container_workload();
  const auto r = Engine(w.pag, options_for(Mode::kDataSharingScheduling, 4)).run({});
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_EQ(r.totals.queries, 0u);
}

TEST(Engine, ContextCountReported) {
  const auto w = container_workload();
  const auto r = Engine(w.pag, options_for(Mode::kSequential, 1)).run(w.queries);
  EXPECT_GE(r.context_count, 1u);
}

}  // namespace
}  // namespace parcfl::cfl
