// Grammar-table compiler tests (cfl/grammar.hpp, DESIGN.md §15): table
// construction from production lists, rejection of malformed and
// non-normalisable grammars, totality of the compiled transition tables over
// every edge kind, and a solver smoke check that the generic walker under the
// compiled pointer grammar reproduces the hard-coded fast path on Fig. 2.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "cfl/grammar.hpp"
#include "cfl/solver.hpp"
#include "test_util.hpp"

namespace parcfl {
namespace {

using cfl::compile_grammar;
using cfl::GrammarSpec;
using cfl::GrammarTable;
using Symbol = cfl::GrammarSpec::Symbol;
using cfl::Direction;
using pag::NodeId;

GrammarSpec spec(std::string start, Direction direction,
                 std::vector<GrammarSpec::Production> productions) {
  GrammarSpec s;
  s.start = std::move(start);
  s.direction = direction;
  s.productions = std::move(productions);
  return s;
}

/// Every structural invariant a compiled table must satisfy, whatever the
/// spec: dense ids, in-range targets, names parallel to states, and an
/// accepting state or emit cell somewhere (a grammar that can never answer
/// would compile to a useless table).
void expect_well_formed(const GrammarTable& t) {
  ASSERT_GT(t.state_count, 0u);
  ASSERT_LE(t.state_count, GrammarTable::kMaxStates);
  EXPECT_EQ(t.state_names.size(), t.state_count);
  bool any_answer = false;
  for (std::uint32_t s = 0; s < t.state_count; ++s) {
    if (t.accept[s]) any_answer = true;
    if (t.heap[s]) {
      EXPECT_LT(t.heap_next[s], t.state_count);
    }
    for (std::uint32_t k = 0; k < GrammarTable::kEdgeKinds; ++k) {
      const GrammarTable::Cell& cell = t.cells[s][k];
      if (!cell.present) {
        // Totality: an absent cell is a well-defined "stop" — the walker
        // reads present first, so next/emit of absent cells must be inert.
        EXPECT_FALSE(cell.emit);
        continue;
      }
      EXPECT_LT(cell.next, t.state_count);
      if (cell.emit) any_answer = true;
    }
  }
  // States beyond state_count must be all-absent (the walker never reads
  // them, but a stray write there would mean an id overflowed the bound).
  for (std::uint32_t s = t.state_count; s < GrammarTable::kMaxStates; ++s) {
    EXPECT_FALSE(t.accept[s]);
    EXPECT_FALSE(t.heap[s]);
    for (std::uint32_t k = 0; k < GrammarTable::kEdgeKinds; ++k)
      EXPECT_FALSE(t.cells[s][k].present);
  }
  EXPECT_TRUE(any_answer);
}

// ---- construction -----------------------------------------------------------

TEST(GrammarCompile, PointerBackwardShape) {
  const GrammarTable& t = cfl::pointer_backward_table();
  expect_well_formed(t);
  EXPECT_EQ(t.direction, Direction::kBackward);
  EXPECT_TRUE(t.root_is_variable);
  // S plus the shared accept sink for `S -> new`.
  ASSERT_EQ(t.state_count, 2u);
  EXPECT_EQ(t.state_names[0], "S");
  EXPECT_FALSE(t.accept[0]);  // a bare variable has no points-to answer
  EXPECT_TRUE(t.accept[1]);
  // The `new` transition targets the bare accept sink, so it compiles to an
  // emit — allocation sites are recorded without being pushed, exactly like
  // the hard-coded fast path.
  const auto knew = static_cast<std::uint32_t>(Symbol::kNew);
  EXPECT_TRUE(t.cells[0][knew].present);
  EXPECT_TRUE(t.cells[0][knew].emit);
  // Assign-family loops stay in S and are real pushes.
  for (const Symbol s : {Symbol::kAssignLocal, Symbol::kAssignGlobal,
                         Symbol::kParam, Symbol::kRet}) {
    const GrammarTable::Cell& cell = t.cells[0][static_cast<std::uint32_t>(s)];
    EXPECT_TRUE(cell.present);
    EXPECT_FALSE(cell.emit);
    EXPECT_EQ(cell.next, 0u);
  }
  // load/store are consumed only through the composite heap-paren rule.
  EXPECT_FALSE(t.cells[0][static_cast<std::uint32_t>(Symbol::kLoad)].present);
  EXPECT_FALSE(t.cells[0][static_cast<std::uint32_t>(Symbol::kStore)].present);
  EXPECT_TRUE(t.heap[0]);
  EXPECT_EQ(t.heap_next[0], 0u);
}

TEST(GrammarCompile, PointerForwardTaintDependsShape) {
  const GrammarTable& fwd = cfl::pointer_forward_table();
  expect_well_formed(fwd);
  EXPECT_EQ(fwd.direction, Direction::kForward);
  EXPECT_FALSE(fwd.root_is_variable);  // flowsTo roots are allocation sites
  EXPECT_EQ(fwd.state_count, 1u);      // every loop re-enters S; S accepts
  EXPECT_TRUE(fwd.accept[0]);

  const GrammarTable& taint = cfl::taint_table();
  expect_well_formed(taint);
  EXPECT_EQ(taint.direction, Direction::kForward);
  EXPECT_TRUE(taint.root_is_variable);
  EXPECT_EQ(taint.state_count, 1u);
  EXPECT_TRUE(taint.accept[0]);
  // Taint never crosses an allocation edge: sources are variables.
  EXPECT_FALSE(
      taint.cells[0][static_cast<std::uint32_t>(Symbol::kNew)].present);
  EXPECT_TRUE(taint.heap[0]);

  const GrammarTable& dep = cfl::depends_table();
  expect_well_formed(dep);
  EXPECT_EQ(dep.direction, Direction::kBackward);
  EXPECT_TRUE(dep.root_is_variable);
  EXPECT_FALSE(
      dep.cells[0][static_cast<std::uint32_t>(Symbol::kNew)].present);
}

TEST(GrammarCompile, MultiSymbolProductionNormalises) {
  // S -> new | load store S needs one fresh intermediate state.
  std::string error;
  const auto t = compile_grammar(
      spec("S", Direction::kBackward,
           {{"S", {Symbol::kNew}, ""},
            {"S", {Symbol::kLoad, Symbol::kStore}, "S"}}),
      &error);
  ASSERT_TRUE(t.has_value()) << error;
  expect_well_formed(*t);
  ASSERT_EQ(t->state_count, 3u);  // S, <accept>, S#0
  const auto kload = static_cast<std::uint32_t>(Symbol::kLoad);
  const auto kstore = static_cast<std::uint32_t>(Symbol::kStore);
  ASSERT_TRUE(t->cells[0][kload].present);
  const std::uint8_t mid = t->cells[0][kload].next;
  EXPECT_NE(mid, 0u);
  EXPECT_FALSE(t->accept[mid]);
  ASSERT_TRUE(t->cells[mid][kstore].present);
  EXPECT_EQ(t->cells[mid][kstore].next, 0u);
  // The fresh state's name is derived from its lhs.
  EXPECT_EQ(t->state_names[mid].rfind("S#", 0), 0u);
}

TEST(GrammarCompile, SharedAcceptSinkIsReused) {
  // Two stop-productions share one sink state instead of minting two.
  std::string error;
  const auto t = compile_grammar(
      spec("S", Direction::kBackward,
           {{"S", {Symbol::kNew}, ""}, {"S", {Symbol::kAssignLocal}, ""}}),
      &error);
  ASSERT_TRUE(t.has_value()) << error;
  EXPECT_EQ(t->state_count, 2u);
  EXPECT_TRUE(t->cells[0][static_cast<std::uint32_t>(Symbol::kNew)].emit);
  EXPECT_TRUE(
      t->cells[0][static_cast<std::uint32_t>(Symbol::kAssignLocal)].emit);
}

// ---- rejection --------------------------------------------------------------

TEST(GrammarCompile, RejectsEmptyGrammar) {
  std::string error;
  EXPECT_FALSE(compile_grammar(spec("S", Direction::kBackward, {}), &error));
  EXPECT_NE(error.find("no productions"), std::string::npos);

  GrammarSpec no_start = spec("", Direction::kBackward,
                              {{"S", {Symbol::kNew}, ""}});
  EXPECT_FALSE(compile_grammar(no_start, &error));
  EXPECT_NE(error.find("start"), std::string::npos);
}

TEST(GrammarCompile, RejectsStartWithoutProductions) {
  std::string error;
  EXPECT_FALSE(compile_grammar(
      spec("S", Direction::kBackward, {{"T", {Symbol::kNew}, ""}}), &error));
  EXPECT_NE(error.find("has no productions"), std::string::npos);
}

TEST(GrammarCompile, RejectsEmptyLhs) {
  std::string error;
  EXPECT_FALSE(compile_grammar(
      spec("S", Direction::kBackward,
           {{"S", {Symbol::kNew}, ""}, {"", {Symbol::kNew}, ""}}),
      &error));
  EXPECT_NE(error.find("empty lhs"), std::string::npos);
}

TEST(GrammarCompile, RejectsUnknownTail) {
  std::string error;
  EXPECT_FALSE(compile_grammar(
      spec("S", Direction::kBackward, {{"S", {Symbol::kNew}, "T"}}), &error));
  EXPECT_NE(error.find("'T'"), std::string::npos);
}

TEST(GrammarCompile, RejectsUnitProduction) {
  std::string error;
  EXPECT_FALSE(compile_grammar(
      spec("S", Direction::kBackward,
           {{"S", {Symbol::kNew}, ""}, {"S", {}, "S"}}),
      &error));
  EXPECT_NE(error.find("unit production"), std::string::npos);
}

TEST(GrammarCompile, RejectsNondeterminism) {
  std::string error;
  // Same state consuming the same edge kind twice.
  EXPECT_FALSE(compile_grammar(
      spec("S", Direction::kBackward,
           {{"S", {Symbol::kNew}, ""}, {"S", {Symbol::kNew}, "S"}}),
      &error));
  EXPECT_NE(error.find("nondeterministic"), std::string::npos);
  // The heap symbol is checked the same way.
  EXPECT_FALSE(compile_grammar(
      spec("S", Direction::kBackward,
           {{"S", {Symbol::kNew}, ""},
            {"S", {Symbol::kHeap}, "S"},
            {"S", {Symbol::kHeap}, "S"}}),
      &error));
  EXPECT_NE(error.find("heap"), std::string::npos);
}

TEST(GrammarCompile, RejectsTooManyStates) {
  // S -> a A, A -> a B, B -> a C, C -> new: five states with the sink.
  std::string error;
  EXPECT_FALSE(compile_grammar(
      spec("S", Direction::kBackward,
           {{"S", {Symbol::kAssignLocal}, "A"},
            {"A", {Symbol::kAssignLocal}, "B"},
            {"B", {Symbol::kAssignLocal}, "C"},
            {"C", {Symbol::kNew}, ""}}),
      &error));
  EXPECT_NE(error.find("states"), std::string::npos);
}

// ---- solver smoke -----------------------------------------------------------

TEST(GrammarSolver, CompiledPointerGrammarMatchesFastPathOnFig2) {
  const auto f = test::fig2();
  cfl::SolverOptions options;
  options.budget = 100'000'000;

  cfl::ContextTable c1;
  cfl::Solver hard(f.lowered.pag, c1, nullptr, options);
  cfl::ContextTable c2;
  cfl::Solver generic(f.lowered.pag, c2, nullptr, options);

  for (const NodeId v : {f.s1, f.s2, f.n1, f.n2, f.v1, f.v2}) {
    const cfl::QueryResult expect = hard.points_to(v);
    const cfl::QueryResult got =
        generic.reach(v, cfl::pointer_backward_table());
    EXPECT_EQ(got.status, expect.status);
    EXPECT_EQ(got.nodes(), expect.nodes()) << "var " << v.value();
  }
}

TEST(GrammarSolver, TaintReachesThroughContainerOnFig2) {
  const auto f = test::fig2();
  cfl::SolverOptions options;
  options.budget = 100'000'000;
  cfl::ContextTable contexts;
  cfl::Solver solver(f.lowered.pag, contexts, nullptr, options);

  // The value stored via add(v1, n1) is what get(v1) returns: n1 taints s1.
  const cfl::QueryResult from_n1 = solver.reach(f.n1, cfl::taint_table());
  ASSERT_EQ(from_n1.status, cfl::QueryStatus::kComplete);
  EXPECT_TRUE(from_n1.contains(f.s1));
  // Context sensitivity keeps the two clients apart: n1 never reaches s2.
  EXPECT_FALSE(from_n1.contains(f.s2));
  // The root itself answers (zero-symbol derivation).
  EXPECT_TRUE(from_n1.contains(f.n1));

  // depends is the mirror: s1's slice contains n1, not n2.
  const cfl::QueryResult s1_slice = solver.reach(f.s1, cfl::depends_table());
  ASSERT_EQ(s1_slice.status, cfl::QueryStatus::kComplete);
  EXPECT_TRUE(s1_slice.contains(f.n1));
  EXPECT_FALSE(s1_slice.contains(f.n2));
}

}  // namespace
}  // namespace parcfl
