// Data-sharing (Algorithm 2) tests: the jmp store itself, shortcut
// consumption, budget charging, unfinished jmps and early termination, and
// the τF/τU selective-insertion thresholds (§IV-A).

#include <gtest/gtest.h>

#include "cfl/jmp_store.hpp"
#include "cfl/solver.hpp"
#include "test_util.hpp"

namespace parcfl::cfl {
namespace {

using pag::CallSiteId;
using pag::FieldId;
using pag::MethodId;
using pag::NodeId;
using pag::TypeId;

TEST(JmpStore, KeyEncodesDirectionNodeContext) {
  const auto k1 = JmpStore::key(Direction::kBackward, NodeId(5), CtxId(7));
  const auto k2 = JmpStore::key(Direction::kForward, NodeId(5), CtxId(7));
  const auto k3 = JmpStore::key(Direction::kBackward, NodeId(6), CtxId(7));
  const auto k4 = JmpStore::key(Direction::kBackward, NodeId(5), CtxId(8));
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NE(k1, k4);
}

TEST(JmpStore, FinishedFirstWins) {
  JmpStore store;
  const auto k = JmpStore::key(Direction::kBackward, NodeId(1), CtxId(0));
  EXPECT_TRUE(store.insert_finished(k, 100, {{NodeId(2), CtxId(0), 50}}));
  EXPECT_FALSE(store.insert_finished(k, 200, {{NodeId(3), CtxId(0), 60}}));

  JmpStore::Lookup lk;
  ASSERT_TRUE(store.lookup(k, lk));
  ASSERT_NE(lk.finished, nullptr);
  EXPECT_EQ(lk.finished->cost, 100u);
  ASSERT_EQ(lk.finished->targets.size(), 1u);
  EXPECT_EQ(lk.finished->targets[0].node, NodeId(2));
}

TEST(JmpStore, UnfinishedFirstWinsAndCoexists) {
  JmpStore store;
  const auto k = JmpStore::key(Direction::kBackward, NodeId(1), CtxId(0));
  EXPECT_TRUE(store.insert_unfinished(k, 500));
  EXPECT_FALSE(store.insert_unfinished(k, 900));
  EXPECT_TRUE(store.insert_finished(k, 100, {}));

  JmpStore::Lookup lk;
  ASSERT_TRUE(store.lookup(k, lk));
  EXPECT_EQ(lk.unfinished_s, 500u);
  EXPECT_NE(lk.finished, nullptr);
}

TEST(JmpStore, StatsAndHistograms) {
  JmpStore store;
  store.insert_finished(JmpStore::key(Direction::kBackward, NodeId(1), CtxId(0)), 10,
                        {{NodeId(2), CtxId(0), 4}, {NodeId(3), CtxId(0), 9}});
  store.insert_unfinished(JmpStore::key(Direction::kBackward, NodeId(4), CtxId(0)),
                          1024);
  const auto s = store.stats();
  EXPECT_EQ(s.finished_entries, 1u);
  EXPECT_EQ(s.finished_edges, 2u);
  EXPECT_EQ(s.unfinished_edges, 1u);
  EXPECT_EQ(s.total_jmps(), 3u);
  EXPECT_EQ(s.finished_hist.bucket(2), 1u);   // 4
  EXPECT_EQ(s.finished_hist.bucket(3), 1u);   // 9
  EXPECT_EQ(s.unfinished_hist.bucket(10), 1u);  // 1024
  EXPECT_GT(store.memory_bytes(), 0u);
}

// ---- solver-level sharing ----------------------------------------------------

/// x = p.f with p and q pointing to the same object and q.f = y, y = new o2:
/// ReachableNodes(x, ∅) completes and is shareable.
struct HeapGraph {
  pag::Pag pag;
  NodeId x, consumer, y, o2;
};

HeapGraph heap_graph() {
  pag::Pag::Builder b;
  const auto p = b.add_local(TypeId(0), MethodId(0));
  const auto q = b.add_local(TypeId(0), MethodId(0));
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto consumer = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  const auto o2 = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(p, o);
  b.new_edge(q, o);
  b.new_edge(y, o2);
  b.store(q, y, FieldId(0));
  b.load(x, p, FieldId(0));
  b.assign_local(consumer, x);
  HeapGraph g{std::move(b).finalize(), x, consumer, y, o2};
  return g;
}

SolverOptions sharing_opts(std::uint64_t budget = 1'000'000) {
  SolverOptions o;
  o.budget = budget;
  o.data_sharing = true;
  o.tau_finished = 0;
  o.tau_unfinished = 0;
  return o;
}

TEST(Sharing, SecondQueryTakesTheShortcut) {
  const auto g = heap_graph();
  ContextTable contexts;
  JmpStore store;
  Solver solver(g.pag, contexts, &store, sharing_opts());

  const auto r1 = solver.points_to(g.x);
  ASSERT_EQ(r1.status, QueryStatus::kComplete);
  EXPECT_TRUE(r1.contains(g.o2));
  EXPECT_GT(solver.counters().jmps_added_finished, 0u);
  EXPECT_EQ(solver.counters().jmps_taken, 0u);

  const auto before_saved = solver.counters().saved_steps;
  const auto r2 = solver.points_to(g.consumer);
  ASSERT_EQ(r2.status, QueryStatus::kComplete);
  EXPECT_TRUE(r2.contains(g.o2));
  EXPECT_GT(solver.counters().jmps_taken, 0u);
  EXPECT_GT(solver.counters().saved_steps, before_saved);
}

TEST(Sharing, PaperChargingAccountsShortcutCosts) {
  const auto g = heap_graph();
  ContextTable contexts;
  JmpStore store;
  SolverOptions o = sharing_opts();
  o.charge_jmp_costs = true;  // Alg. 2 line 5 verbatim
  Solver solver(g.pag, contexts, &store, o);
  (void)solver.points_to(g.x);
  (void)solver.points_to(g.consumer);
  EXPECT_GT(solver.counters().jmps_taken, 0u);
  // Charged accounts for the shortcut, traversed does not.
  EXPECT_GT(solver.counters().charged_steps, solver.counters().traversed_steps);
}

TEST(Sharing, ShortcutPreservesAnswerAndCompleteness) {
  const auto g = heap_graph();
  ContextTable c1, c2;
  JmpStore store;
  Solver sharing(g.pag, c1, &store, sharing_opts());
  SolverOptions plain_opts;
  plain_opts.budget = 1'000'000;
  Solver plain(g.pag, c2, nullptr, plain_opts);

  (void)sharing.points_to(g.x);  // warm the store
  const auto shared = sharing.points_to(g.consumer);
  const auto unshared = plain.points_to(g.consumer);
  EXPECT_EQ(shared.nodes(), unshared.nodes());
  EXPECT_EQ(shared.status, unshared.status);
}

TEST(Sharing, TauFinishedSuppressesCheapJmps) {
  const auto g = heap_graph();
  ContextTable contexts;
  JmpStore store;
  SolverOptions o = sharing_opts();
  o.tau_finished = 1'000'000;  // nothing is ever expensive enough
  Solver solver(g.pag, contexts, &store, o);
  (void)solver.points_to(g.x);
  EXPECT_EQ(solver.counters().jmps_added_finished, 0u);
  EXPECT_GT(solver.counters().jmps_suppressed, 0u);
  EXPECT_EQ(store.entry_count(), 0u);
}

/// A long assign chain behind a load's base: ReachableNodes cannot finish
/// within the budget, producing an unfinished jmp at the load destination.
struct ChainGraph {
  pag::Pag pag;
  NodeId x, entry;
};

ChainGraph chain_graph(std::uint32_t chain_length) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto p = b.add_local(TypeId(0), MethodId(0));
  b.load(x, p, FieldId(0));
  // A store exists so ReachableNodes has work to do.
  const auto q = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  b.store(q, y, FieldId(0));
  // p <- c0 <- c1 <- ... <- o (long chain).
  NodeId prev = p;
  for (std::uint32_t i = 0; i < chain_length; ++i) {
    const auto c = b.add_local(TypeId(0), MethodId(0));
    b.assign_local(prev, c);
    prev = c;
  }
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(prev, o);
  b.new_edge(q, o);  // q aliases p, eventually
  const auto entry = b.add_local(TypeId(0), MethodId(0));
  b.assign_local(entry, x);
  ChainGraph g{std::move(b).finalize(), x, entry};
  return g;
}

TEST(Sharing, BudgetExhaustionAddsUnfinishedJmp) {
  const auto g = chain_graph(200);
  ContextTable contexts;
  JmpStore store;
  Solver solver(g.pag, contexts, &store, sharing_opts(/*budget=*/50));

  const auto r = solver.points_to(g.x);
  EXPECT_EQ(r.status, QueryStatus::kOutOfBudget);
  EXPECT_GT(solver.counters().jmps_added_unfinished, 0u);
  const auto stats = store.stats();
  EXPECT_GT(stats.unfinished_edges, 0u);
}

TEST(Sharing, UnfinishedJmpTriggersEarlyTermination) {
  const auto g = chain_graph(200);
  ContextTable contexts;
  JmpStore store;
  Solver solver(g.pag, contexts, &store, sharing_opts(/*budget=*/50));

  ASSERT_EQ(solver.points_to(g.x).status, QueryStatus::kOutOfBudget);
  EXPECT_EQ(solver.counters().early_terminations, 0u);

  // `entry` reaches x after one step; the recorded unfinished s (≈ budget)
  // exceeds the remaining budget, so the query aborts immediately.
  const auto traversed_before = solver.counters().traversed_steps;
  const auto r = solver.points_to(g.entry);
  EXPECT_EQ(r.status, QueryStatus::kEarlyTermination);
  EXPECT_EQ(solver.counters().early_terminations, 1u);
  // The early-terminated query walked only a couple of nodes.
  EXPECT_LT(solver.counters().traversed_steps - traversed_before, 10u);
}

TEST(Sharing, TauUnfinishedSuppressesSmallWarnings) {
  const auto g = chain_graph(200);
  ContextTable contexts;
  JmpStore store;
  SolverOptions o = sharing_opts(/*budget=*/50);
  o.tau_unfinished = 1'000'000;
  Solver solver(g.pag, contexts, &store, o);
  ASSERT_EQ(solver.points_to(g.x).status, QueryStatus::kOutOfBudget);
  EXPECT_EQ(store.stats().unfinished_edges, 0u);
  EXPECT_GT(solver.counters().jmps_suppressed, 0u);
}

TEST(Sharing, EarlyTerminationRequiresSharing) {
  const auto g = chain_graph(200);
  ContextTable contexts;
  SolverOptions o;
  o.budget = 50;
  Solver solver(g.pag, contexts, nullptr, o);
  ASSERT_EQ(solver.points_to(g.x).status, QueryStatus::kOutOfBudget);
  const auto r = solver.points_to(g.entry);
  EXPECT_EQ(r.status, QueryStatus::kOutOfBudget);  // no store, no ET
  EXPECT_EQ(solver.counters().early_terminations, 0u);
}

}  // namespace
}  // namespace parcfl::cfl
