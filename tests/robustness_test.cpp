// Robustness and cross-cutting property suites:
//  * assign-cycle collapsing preserves every answer on random graphs,
//  * Andersen heap cells are internally consistent,
//  * the jmp store and context table survive heavy mixed-thread traffic,
//  * persisted sharing state survives text mutation without crashing.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "andersen/andersen.hpp"
#include "cfl/persist.hpp"
#include "cfl/solver.hpp"
#include "pag/collapse.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace parcfl {
namespace {

using cfl::ContextTable;
using cfl::JmpStore;
using cfl::Solver;
using cfl::SolverOptions;
using pag::NodeId;

SolverOptions big() {
  SolverOptions o;
  o.budget = 10'000'000;
  o.max_fixpoint_iters = 64;
  return o;
}

class CollapsePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollapsePropertyTest, CollapsingPreservesAllAnswers) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 11'000;
  cfg.assign_edges = 8;  // denser assignments -> more cycles to collapse
  cfg.heap_edge_pairs = 3;
  const auto pag = test::random_layered_pag(cfg);
  const auto collapsed = pag::collapse_assign_cycles(pag);

  ContextTable c1, c2;
  Solver a(pag, c1, nullptr, big());
  Solver b(collapsed.pag, c2, nullptr, big());

  for (const NodeId v : test::all_variables(pag)) {
    const auto ra = a.points_to(v);
    const auto rb = b.points_to(collapsed.representative[v.value()]);
    ASSERT_EQ(ra.status, cfl::QueryStatus::kComplete);
    ASSERT_EQ(rb.status, cfl::QueryStatus::kComplete);
    const auto na = ra.nodes();
    const auto nb = rb.nodes();
    ASSERT_EQ(na.size(), nb.size()) << "seed " << cfg.seed << " var " << v.value();
    for (std::size_t i = 0; i < na.size(); ++i)
      EXPECT_EQ(collapsed.representative[na[i].value()], nb[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapsePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

class AndersenCellTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AndersenCellTest, HeapCellsAreConsistentWithStores) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 12'000;
  cfg.heap_edge_pairs = 4;
  const auto pag = test::random_layered_pag(cfg);
  const auto result = andersen::solve(pag);

  // Every store q.f = y with o in pts(q) must have pts(y) ⊆ cell(o, f);
  // conversely every cell member must be justified by some such store.
  for (const pag::Edge& e : pag.edges()) {
    if (e.kind != pag::EdgeKind::kStore) continue;
    for (const std::uint32_t o : result.points_to(e.dst)) {
      const auto cell = result.heap_cell(NodeId(o), pag::FieldId(e.aux));
      for (const std::uint32_t v : result.points_to(e.src))
        EXPECT_TRUE(std::binary_search(cell.begin(), cell.end(), v))
            << "seed " << cfg.seed;
    }
  }
  // Loads x = p.f: cell contents flow into x.
  for (const pag::Edge& e : pag.edges()) {
    if (e.kind != pag::EdgeKind::kLoad) continue;
    const auto px = result.points_to(e.dst);
    for (const std::uint32_t o : result.points_to(e.src)) {
      const auto cell = result.heap_cell(NodeId(o), pag::FieldId(e.aux));
      for (const std::uint32_t v : cell)
        EXPECT_TRUE(std::binary_search(px.begin(), px.end(), v))
            << "seed " << cfg.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AndersenCellTest,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(ConcurrencyStress, JmpStoreMixedTraffic) {
  JmpStore store;
  constexpr int kThreads = 8;
  constexpr std::uint32_t kKeys = 400;
  std::atomic<std::uint64_t> finished_wins{0}, unfinished_wins{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      support::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int round = 0; round < 2000; ++round) {
        const auto node = NodeId(static_cast<std::uint32_t>(rng.below(kKeys)));
        const auto key = JmpStore::key(cfl::Direction::kBackward, node, cfl::CtxId(0));
        switch (rng.below(3)) {
          case 0:
            if (store.insert_finished(
                    key, 100 + static_cast<std::uint32_t>(t),
                    {{NodeId(node.value() + 1), cfl::CtxId(0), 50}}))
              finished_wins.fetch_add(1);
            break;
          case 1:
            if (store.insert_unfinished(key, 1000 + static_cast<std::uint32_t>(t)))
              unfinished_wins.fetch_add(1);
            break;
          default: {
            JmpStore::Lookup lk;
            if (store.lookup(key, lk) && lk.finished != nullptr) {
              // Published records are immutable and well-formed.
              EXPECT_GE(lk.finished->cost, 100u);
              ASSERT_EQ(lk.finished->targets.size(), 1u);
              EXPECT_EQ(lk.finished->targets[0].node.value(), node.value() + 1);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // First-wins: at most one winner per key per kind.
  EXPECT_LE(finished_wins.load(), kKeys);
  EXPECT_LE(unfinished_wins.load(), kKeys);
  const auto stats = store.stats();
  EXPECT_EQ(stats.finished_entries, finished_wins.load());
  EXPECT_EQ(stats.unfinished_edges, unfinished_wins.load());
}

TEST(ConcurrencyStress, ParallelSolversShareOneStore) {
  const auto fx = test::fig2();
  ContextTable contexts;
  JmpStore store;
  SolverOptions o = big();
  o.data_sharing = true;
  o.tau_finished = 0;

  constexpr int kThreads = 8;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Solver solver(fx.lowered.pag, contexts, &store, o);
      for (int round = 0; round < 50; ++round) {
        const auto r1 = solver.points_to(fx.s1);
        const auto r2 = solver.points_to(fx.s2);
        if (!(r1.contains(fx.o16) && !r1.contains(fx.o20) &&
              r2.contains(fx.o20) && !r2.contains(fx.o16)))
          mismatch.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(PersistFuzz, MutatedStateNeverCrashes) {
  const auto fx = test::fig2();
  ContextTable contexts;
  JmpStore store;
  SolverOptions o = big();
  o.data_sharing = true;
  o.tau_finished = 0;
  Solver solver(fx.lowered.pag, contexts, &store, o);
  for (const NodeId q : fx.lowered.queries) (void)solver.points_to(q);

  std::ostringstream out;
  cfl::save_sharing_state(out, fx.lowered.pag, contexts, store);
  const std::string text = out.str();

  support::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    for (int e = 0; e < 3 && !mutated.empty(); ++e) {
      const std::size_t pos = rng.below(mutated.size());
      if (rng.chance(0.5))
        mutated[pos] = static_cast<char>('0' + rng.below(10));
      else
        mutated.erase(pos, 1 + rng.below(4));
    }
    ContextTable c2;
    JmpStore s2;
    std::istringstream in(mutated);
    std::string error;
    const bool ok = cfl::load_sharing_state(in, fx.lowered.pag, c2, s2, &error);
    if (!ok) {
      EXPECT_FALSE(error.empty());
    }
    // Whatever loaded must be usable without crashing.
    Solver probe(fx.lowered.pag, c2, &s2, o);
    (void)probe.points_to(fx.s1);
  }
}

}  // namespace
}  // namespace parcfl
