// Incremental PAG updates (DESIGN.md §8): pag::Delta apply/round-trip, the
// cfl invalidation pass, and the service-level update path.
//
//  * Delta — apply semantics (added nodes/edges, removals, tombstones),
//    rejection of inconsistent deltas, text-format round-trips;
//  * Invalidate — the metamorphic soundness bar: after any delta sequence a
//    *warm* solver answers exactly like a cold run on the mutated graph
//    (ExactOracle at small scale, Andersen CI at medium scale), while
//    entries in unaffected regions survive (the selectivity headline);
//  * Session/QueryService — `update` swaps the graph between batches, keeps
//    the warm store consistent, and races cleanly with concurrent queries
//    (the tsan target: every reply matches the pre- or post-update truth).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "andersen/andersen.hpp"
#include "andersen/prefilter.hpp"
#include "cfl/engine.hpp"
#include "cfl/invalidate.hpp"
#include "cfl/solver.hpp"
#include "frontend/lower.hpp"
#include "oracle/oracle.hpp"
#include "pag/collapse.hpp"
#include "pag/delta.hpp"
#include "pag/pag_io.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "support/rng.hpp"
#include "synth/generator.hpp"
#include "test_util.hpp"

namespace parcfl {
namespace {

using pag::EdgeKind;
using pag::NodeId;
using pag::NodeKind;

cfl::SolverOptions sharing_opts() {
  cfl::SolverOptions o;
  o.budget = 1'000'000;
  o.data_sharing = true;
  // Miniature graphs: publish aggressively so invalidation has real entries
  // to keep or evict.
  o.tau_finished = 2;
  o.tau_unfinished = 10;
  return o;
}

cfl::SolverOptions plain_opts() {
  cfl::SolverOptions o;
  o.budget = 1'000'000;
  return o;
}

std::vector<std::uint32_t> solver_pts(cfl::Solver& solver, NodeId v) {
  const auto r = solver.points_to(v);
  EXPECT_EQ(r.status, cfl::QueryStatus::kComplete) << "var " << v.value();
  std::vector<std::uint32_t> out;
  for (const NodeId n : r.nodes()) out.push_back(n.value());
  return out;
}

/// Locals of a layered test graph, grouped by layer (= containing method).
std::vector<std::vector<NodeId>> vars_by_layer(const pag::Pag& pag,
                                               std::uint32_t layers) {
  std::vector<std::vector<NodeId>> out(layers);
  for (std::uint32_t n = 0; n < pag.node_count(); ++n) {
    const NodeId id(n);
    const auto& info = pag.node(id);
    if (info.kind == NodeKind::kLocal && info.method.valid() &&
        info.method.value() < layers)
      out[info.method.value()].push_back(id);
  }
  return out;
}

/// A random delta that preserves random_layered_pag's layering invariant
/// (param up / ret down between adjacent layers only), so the mutated graph
/// stays within the exact oracle's context-depth cap.
pag::Delta random_layer_delta(const pag::Pag& pag, std::uint32_t layers,
                              support::Rng& rng) {
  pag::Delta d(pag);
  auto layer_vars = vars_by_layer(pag, layers);
  auto pick = [&](const std::vector<NodeId>& v) {
    return v[rng.below(v.size())];
  };
  auto rand_layer = [&] { return static_cast<std::uint32_t>(rng.below(layers)); };

  {  // A new local wired into its layer, sometimes with a new allocation.
    const std::uint32_t l = rand_layer();
    const NodeId v =
        d.add_node(NodeKind::kLocal, pag::TypeId(0), pag::MethodId(l));
    d.add_edge(EdgeKind::kAssignLocal, v, pick(layer_vars[l]));
    layer_vars[l].push_back(v);
    if (rng.chance(0.7)) {
      const NodeId o =
          d.add_node(NodeKind::kObject, pag::TypeId(0), pag::MethodId(l));
      d.add_edge(EdgeKind::kNew, pick(layer_vars[l]), o);
    }
  }
  for (std::uint64_t i = 0, n = 1 + rng.below(3); i < n; ++i) {
    const std::uint32_t l = rand_layer();
    d.add_edge(EdgeKind::kAssignLocal, pick(layer_vars[l]), pick(layer_vars[l]));
  }
  if (layers > 1 && pag.call_site_count() > 0)
    for (std::uint64_t i = 0, n = rng.below(3); i < n; ++i) {
      const auto low = static_cast<std::uint32_t>(rng.below(layers - 1));
      const auto cs = static_cast<std::uint32_t>(rng.below(pag.call_site_count()));
      if (rng.chance(0.5))
        d.add_edge(EdgeKind::kParam, pick(layer_vars[low + 1]),
                   pick(layer_vars[low]), cs);
      else
        d.add_edge(EdgeKind::kRet, pick(layer_vars[low]),
                   pick(layer_vars[low + 1]), cs);
    }
  if (pag.field_count() > 0 && rng.chance(0.6)) {
    const std::uint32_t l = rand_layer();
    const auto f = static_cast<std::uint32_t>(rng.below(pag.field_count()));
    d.add_edge(EdgeKind::kLoad, pick(layer_vars[l]), pick(layer_vars[l]), f);
    d.add_edge(EdgeKind::kStore, pick(layer_vars[l]), pick(layer_vars[l]), f);
  }

  // Remove a few distinct base edges (removal can only shorten paths, so the
  // layering invariant is preserved trivially).
  const auto edges = pag.edges();
  std::set<std::size_t> chosen;
  for (std::uint64_t i = 0, n = rng.below(3); i < n && !edges.empty(); ++i)
    chosen.insert(rng.below(edges.size()));
  for (const std::size_t i : chosen) {
    const pag::Edge& e = edges[i];
    d.remove_edge(e.kind, e.dst, e.src, e.aux);
  }
  if (rng.chance(0.3)) {
    const std::uint32_t l = rand_layer();
    d.remove_node(pick(layer_vars[l]));
  }
  return d;
}

// ---- Delta apply ------------------------------------------------------------

struct Line {
  pag::Pag pag;
  NodeId v0, v1, o;
};

/// o --new--> v0 --assign--> v1.
Line line_graph() {
  pag::Pag::Builder b;
  b.set_counts(1, 1, 1, 1);
  Line g;
  const NodeId v0 = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const NodeId v1 = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const NodeId o = b.add_object(pag::TypeId(0), pag::MethodId(0));
  b.new_edge(v0, o);
  b.assign_local(v1, v0);
  g.pag = std::move(b).finalize();
  g.v0 = v0;
  g.v1 = v1;
  g.o = o;
  return g;
}

TEST(DeltaApply, AddsNodesAndEdgesRemovesEdges) {
  Line g = line_graph();
  EXPECT_EQ(g.pag.revision(), 0u);

  pag::Delta d(g.pag);
  const NodeId v2 = d.add_node(NodeKind::kLocal, pag::TypeId(0), pag::MethodId(0));
  d.add_edge(EdgeKind::kAssignLocal, v2, g.v1);
  d.remove_edge(EdgeKind::kAssignLocal, g.v1, g.v0);

  pag::ApplyStats stats;
  std::string error;
  auto next = pag::apply_delta(g.pag, d, &stats, &error);
  ASSERT_TRUE(next.has_value()) << error;
  EXPECT_EQ(stats.nodes_added, 1u);
  EXPECT_EQ(stats.edges_added, 1u);
  EXPECT_EQ(stats.edges_removed, 1u);
  EXPECT_EQ(next->node_count(), g.pag.node_count() + 1);
  EXPECT_EQ(next->edge_count(), g.pag.edge_count());  // one out, one in
  EXPECT_EQ(next->revision(), 1u);
  // The base graph is untouched.
  EXPECT_EQ(g.pag.node_count(), 3u);
  EXPECT_EQ(g.pag.revision(), 0u);

  cfl::ContextTable contexts;
  cfl::Solver solver(*next, contexts, nullptr, plain_opts());
  EXPECT_EQ(solver_pts(solver, g.v0), std::vector<std::uint32_t>{g.o.value()});
  EXPECT_TRUE(solver_pts(solver, g.v1).empty());  // chain was cut
  EXPECT_TRUE(solver_pts(solver, v2).empty());
}

TEST(DeltaApply, TombstoneDropsIncidentEdgesKeepsId) {
  Line g = line_graph();
  pag::Delta d(g.pag);
  d.remove_node(g.v0);

  pag::ApplyStats stats;
  std::string error;
  auto next = pag::apply_delta(g.pag, d, &stats, &error);
  ASSERT_TRUE(next.has_value()) << error;
  EXPECT_EQ(stats.edges_removed, 2u);  // both the new and the assign edge
  EXPECT_EQ(next->node_count(), g.pag.node_count());  // id survives, isolated
  EXPECT_EQ(next->edge_count(), 0u);

  cfl::ContextTable contexts;
  cfl::Solver solver(*next, contexts, nullptr, plain_opts());
  EXPECT_TRUE(solver_pts(solver, g.v0).empty());
  EXPECT_TRUE(solver_pts(solver, g.v1).empty());
}

TEST(DeltaApply, RejectsInconsistentDeltas) {
  Line g = line_graph();
  std::string error;

  {  // Recorded against a different node-id space.
    pag::Delta d(g.pag.node_count() + 5);
    EXPECT_FALSE(pag::apply_delta(g.pag, d, nullptr, &error).has_value());
    EXPECT_NE(error.find("node count"), std::string::npos);
  }
  {  // Removing an edge the graph does not contain.
    pag::Delta d(g.pag);
    d.remove_edge(EdgeKind::kNew, g.v1, g.o);
    EXPECT_FALSE(pag::apply_delta(g.pag, d, nullptr, &error).has_value());
    EXPECT_NE(error.find("not present"), std::string::npos);
  }
  {  // Added edge referencing an unknown node.
    pag::Delta d(g.pag);
    d.add_edge(EdgeKind::kAssignLocal, NodeId(99), g.v0);
    EXPECT_FALSE(pag::apply_delta(g.pag, d, nullptr, &error).has_value());
  }
  {  // Tombstone of an unknown node.
    pag::Delta d(g.pag);
    d.remove_node(NodeId(99));
    EXPECT_FALSE(pag::apply_delta(g.pag, d, nullptr, &error).has_value());
  }
  {  // Aux payload on a kind that carries none.
    pag::Delta d(g.pag);
    d.add_edge(EdgeKind::kAssignLocal, g.v1, g.v0, /*aux=*/7);
    EXPECT_FALSE(pag::apply_delta(g.pag, d, nullptr, &error).has_value());
  }
  {  // A del subsumed by a delnode is consumed, not an error.
    pag::Delta d(g.pag);
    d.remove_edge(EdgeKind::kNew, g.v0, g.o);
    d.remove_node(g.v0);
    EXPECT_TRUE(pag::apply_delta(g.pag, d, nullptr, &error).has_value()) << error;
  }
}

TEST(DeltaText, RoundTripsAndAppliesIdentically) {
  test::RandomPagConfig cfg;
  cfg.seed = 11;
  const auto pag = test::random_layered_pag(cfg);
  support::Rng rng(77);
  const pag::Delta d = random_layer_delta(pag, cfg.layers, rng);

  std::ostringstream out;
  pag::write_delta(out, d);

  std::istringstream in(out.str());
  std::string error;
  const auto parsed = pag::read_delta(in, pag, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  std::ostringstream out2;
  pag::write_delta(out2, *parsed);
  EXPECT_EQ(out.str(), out2.str());

  const auto a = pag::apply_delta(pag, d, nullptr, &error);
  ASSERT_TRUE(a.has_value()) << error;
  const auto b = pag::apply_delta(pag, *parsed, nullptr, &error);
  ASSERT_TRUE(b.has_value()) << error;
  EXPECT_EQ(pag::write_pag_string(*a), pag::write_pag_string(*b));
  EXPECT_EQ(a->revision(), b->revision());
}

TEST(DeltaText, RejectsMalformedInput) {
  Line g = line_graph();
  auto parse = [&](const std::string& text) {
    std::istringstream in(text);
    std::string error;
    const auto d = pag::read_delta(in, g.pag, &error);
    if (!d.has_value()) {
      EXPECT_FALSE(error.empty());
    }
    return d.has_value();
  };
  EXPECT_FALSE(parse("nonsense\n"));
  EXPECT_FALSE(parse("parcfl-delta 2\n"));
  EXPECT_FALSE(parse("parcfl-delta 1\nfrobnicate 1\n"));
  EXPECT_FALSE(parse("parcfl-delta 1\nadd assignl 0\n"));
  EXPECT_FALSE(parse("parcfl-delta 1\nadd assignl 0 99\n"));
  EXPECT_FALSE(parse("parcfl-delta 1\nadd ld 0 1\n"));       // missing f=
  EXPECT_FALSE(parse("parcfl-delta 1\nadd assignl 0 1 f=0\n"));
  EXPECT_FALSE(parse("parcfl-delta 1\nnode x\n"));
  EXPECT_FALSE(parse("parcfl-delta 1\ndelnode 99\n"));
  EXPECT_TRUE(parse("parcfl-delta 1\n# comment\n\nadd assignl 0 1\n"));
  // Delta-added nodes become referenceable immediately.
  EXPECT_TRUE(parse("parcfl-delta 1\nnode l\nadd assignl 3 0\n"));
  EXPECT_FALSE(parse("parcfl-delta 1\nadd assignl 3 0\n"));
}

// ---- invalidation soundness (metamorphic) -----------------------------------

class UpdateMetamorphicTest : public ::testing::TestWithParam<std::uint64_t> {};

/// The correctness headline: warm-after-update == cold-on-mutated-graph, with
/// the exact oracle as the cold truth, across a random delta *sequence*.
TEST_P(UpdateMetamorphicTest, WarmAfterUpdateMatchesExactOracle) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam();
  cfg.layers = 2 + GetParam() % 3;
  cfg.vars_per_layer = 3;
  cfg.assign_edges = 4 + GetParam() % 4;
  pag::Pag pag = test::random_layered_pag(cfg);

  cfl::ContextTable contexts;
  cfl::JmpStore store;
  support::Rng rng(GetParam() * 7919 + 3);

  const int steps = 3;
  for (int step = 0; step < steps; ++step) {
    {  // Warm the store on the current graph.
      cfl::Solver solver(pag, contexts, &store, sharing_opts());
      for (const NodeId v : test::all_variables(pag)) (void)solver.points_to(v);
    }

    const pag::Delta delta = random_layer_delta(pag, cfg.layers, rng);
    std::string error;
    auto next = pag::apply_delta(pag, delta, nullptr, &error);
    ASSERT_TRUE(next.has_value()) << error;

    const auto stats = cfl::invalidate_sharing_state(pag, *next, delta,
                                                     contexts, store);
    EXPECT_EQ(stats.entries_before, stats.evicted + stats.kept);
    pag = std::move(*next);
    EXPECT_EQ(pag.revision(), static_cast<std::uint32_t>(step + 1));

    // Warm solver on the mutated graph must agree with the exact oracle
    // (equivalently: with any cold run) on every variable.
    const oracle::ExactOracle exact(pag);
    cfl::Solver warm(pag, contexts, &store, sharing_opts());
    for (const NodeId v : test::all_variables(pag))
      EXPECT_EQ(solver_pts(warm, v), exact.points_to(v))
          << "seed " << GetParam() << " step " << step << " var " << v.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateMetamorphicTest,
                         ::testing::Range<std::uint64_t>(1, 13));

/// One heap-matching cluster: p1/p2 alias a container object o, a store
/// writes s (pointing to os) through p1, a load reads through p2 into x, and
/// t copies x. points_to(t) = {os}, derived via a ReachableNodes call at x —
/// which is exactly where the solver publishes jmp entries.
struct Cluster {
  NodeId p1, p2, s, x, t, o, os;
};

Cluster add_cluster(pag::Pag::Builder& b, std::uint32_t method) {
  Cluster c;
  c.p1 = b.add_local(pag::TypeId(0), pag::MethodId(method));
  c.p2 = b.add_local(pag::TypeId(0), pag::MethodId(method));
  c.s = b.add_local(pag::TypeId(0), pag::MethodId(method));
  c.x = b.add_local(pag::TypeId(0), pag::MethodId(method));
  c.t = b.add_local(pag::TypeId(0), pag::MethodId(method));
  c.o = b.add_object(pag::TypeId(0), pag::MethodId(method));
  c.os = b.add_object(pag::TypeId(0), pag::MethodId(method));
  b.new_edge(c.p1, c.o);
  b.new_edge(c.p2, c.o);
  b.new_edge(c.s, c.os);
  b.store(c.p1, c.s, pag::FieldId(0));
  b.load(c.x, c.p2, pag::FieldId(0));
  b.assign_local(c.t, c.x);
  return c;
}

TEST(Invalidate, SelectiveEvictionKeepsUnaffectedCluster) {
  pag::Pag::Builder b;
  b.set_counts(1, 1, 1, 2);
  const Cluster ca = add_cluster(b, 0);
  const Cluster cb = add_cluster(b, 1);  // disconnected from ca
  const pag::Pag pag = std::move(b).finalize();

  cfl::SolverOptions opts = sharing_opts();
  opts.tau_finished = 1;  // publish everything
  opts.tau_unfinished = 2;
  cfl::ContextTable contexts;
  cfl::JmpStore store;
  {
    cfl::Solver solver(pag, contexts, &store, opts);
    for (const NodeId v : test::all_variables(pag)) (void)solver.points_to(v);
  }
  ASSERT_GT(store.entry_count(), 0u);

  // Cut cluster B's store base: p1 no longer aliases p2, so B's load reads
  // nothing. Cluster A is untouched.
  pag::Delta d(pag);
  d.remove_edge(EdgeKind::kNew, cb.p1, cb.o);
  std::string error;
  auto next = pag::apply_delta(pag, d, nullptr, &error);
  ASSERT_TRUE(next.has_value()) << error;

  const auto stats = cfl::invalidate_sharing_state(pag, *next, d, contexts, store);
  EXPECT_GT(stats.evicted, 0u) << "cluster B entries must go";
  EXPECT_GT(stats.kept, 0u) << "cluster A entries must survive";
  EXPECT_EQ(store.entry_count(), stats.kept);

  cfl::Solver warm(*next, contexts, &store, opts);
  EXPECT_EQ(solver_pts(warm, ca.t), std::vector<std::uint32_t>{ca.os.value()});
  EXPECT_GT(warm.counters().jmps_taken, 0u)
      << "the surviving cluster-A entries must be ridden, not re-derived";
  EXPECT_TRUE(solver_pts(warm, cb.t).empty());
  EXPECT_EQ(solver_pts(warm, cb.p2), std::vector<std::uint32_t>{cb.o.value()});
}

TEST(Invalidate, WarmAfterUpdateMatchesAndersenContextInsensitive) {
  // Medium scale: a synthetic container workload, context-insensitive so
  // Andersen's whole-program result is the exact truth.
  synth::GeneratorConfig gcfg;
  gcfg.seed = 31;
  gcfg.app_methods = 12;
  gcfg.library_methods = 12;
  gcfg.containers = 3;
  gcfg.container_use_blocks = 10;
  const auto lowered = frontend::lower(synth::generate(gcfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  pag::Pag pag = std::move(collapsed.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());

  cfl::SolverOptions opts = sharing_opts();
  opts.context_sensitive = false;
  opts.tau_finished = 5;
  opts.tau_unfinished = 50;

  cfl::ContextTable contexts;
  cfl::JmpStore store;
  {
    cfl::Solver solver(pag, contexts, &store, opts);
    for (const NodeId q : queries) (void)solver.points_to(q);
  }
  ASSERT_GT(store.entry_count(), 0u);

  // A delta with no layering discipline: remove random edges, cross-wire
  // random variables, add an allocation.
  support::Rng rng(97);
  const auto vars = test::all_variables(pag);
  pag::Delta d(pag);
  const auto edges = pag.edges();
  std::set<std::size_t> chosen;
  while (chosen.size() < 5) chosen.insert(rng.below(edges.size()));
  for (const std::size_t i : chosen) {
    const pag::Edge& e = edges[i];
    d.remove_edge(e.kind, e.dst, e.src, e.aux);
  }
  for (int i = 0; i < 4; ++i)
    d.add_edge(EdgeKind::kAssignLocal, vars[rng.below(vars.size())],
               vars[rng.below(vars.size())]);
  const NodeId fresh_obj =
      d.add_node(NodeKind::kObject, pag::TypeId(0), pag::MethodId(0));
  d.add_edge(EdgeKind::kNew, vars[rng.below(vars.size())], fresh_obj);

  std::string error;
  auto next = pag::apply_delta(pag, d, nullptr, &error);
  ASSERT_TRUE(next.has_value()) << error;
  const auto stats = cfl::invalidate_sharing_state(pag, *next, d, contexts, store);
  EXPECT_EQ(stats.entries_before, stats.evicted + stats.kept);

  const auto andersen = andersen::solve(*next);
  cfl::Solver warm(*next, contexts, &store, opts);
  for (const NodeId q : queries) {
    const auto got = solver_pts(warm, q);
    const auto want_span = andersen.points_to(q);
    const std::vector<std::uint32_t> want(want_span.begin(), want_span.end());
    EXPECT_EQ(got, want) << "var " << q.value();
  }
}

// ---- session + service ------------------------------------------------------

struct Workload {
  pag::Pag pag;
  std::vector<NodeId> queries;
};

Workload container_workload(std::uint64_t seed = 21) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 12;
  cfg.library_methods = 12;
  cfg.containers = 3;
  cfg.container_use_blocks = 10;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

service::Session::Options session_options(unsigned threads) {
  service::Session::Options o;
  o.engine.mode = cfl::Mode::kDataSharingScheduling;
  o.engine.threads = threads;
  o.engine.solver.budget = 200'000;
  o.engine.solver.tau_finished = 10;
  o.engine.solver.tau_unfinished = 100;
  return o;
}

/// A small, well-formed delta against `pag`: cross-wires two query vars and
/// removes one existing assign edge (if any).
pag::Delta small_delta(const pag::Pag& pag, const std::vector<NodeId>& vars,
                       std::uint64_t seed) {
  support::Rng rng(seed);
  pag::Delta d(pag);
  d.add_edge(EdgeKind::kAssignLocal, vars[rng.below(vars.size())],
             vars[rng.below(vars.size())]);
  const NodeId fresh =
      d.add_node(NodeKind::kObject, pag::TypeId(0), pag::MethodId(0));
  d.add_edge(EdgeKind::kNew, vars[rng.below(vars.size())], fresh);
  for (const pag::Edge& e : pag.edges())
    if (e.kind == EdgeKind::kAssignLocal) {
      d.remove_edge(e.kind, e.dst, e.src, e.aux);
      break;
    }
  return d;
}

TEST(SessionUpdate, SwapsGraphBetweenBatchesAndStaysConsistent) {
  const Workload w = container_workload();
  service::Session session(w.pag, session_options(2));

  std::vector<service::Session::Item> items;
  for (const NodeId q : w.queries) items.push_back({q, 0});
  (void)session.run_batch(items);  // warm the store
  EXPECT_EQ(session.revision(), 0u);

  const pag::Delta delta = small_delta(w.pag, w.queries, 5);
  std::string error;
  auto mutated = pag::apply_delta(w.pag, delta, nullptr, &error);
  ASSERT_TRUE(mutated.has_value()) << error;

  service::Session::UpdateStats stats;
  ASSERT_TRUE(session.update(delta, &error, &stats)) << error;
  EXPECT_EQ(stats.revision, 1u);
  EXPECT_EQ(session.revision(), 1u);
  EXPECT_EQ(session.node_count(), mutated->node_count());
  EXPECT_EQ(stats.invalidate.entries_before,
            stats.invalidate.evicted + stats.invalidate.kept);

  // Warm-after-update answers == a cold session on the mutated graph.
  const auto warm = session.run_batch(items);
  service::Session cold(*mutated, session_options(2));
  const auto expected = cold.run_batch(items);
  ASSERT_EQ(warm.items.size(), expected.items.size());
  for (std::size_t i = 0; i < warm.items.size(); ++i) {
    EXPECT_EQ(warm.items[i].status, expected.items[i].status) << "item " << i;
    EXPECT_EQ(warm.items[i].objects, expected.items[i].objects) << "item " << i;
  }

  // A rejected delta leaves revision and answers untouched.
  pag::Delta bad(session.node_count());
  bad.remove_edge(EdgeKind::kNew, w.queries[0], w.queries[0]);
  EXPECT_FALSE(session.update(bad, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(session.revision(), 1u);
  const auto after = session.run_batch(items);
  for (std::size_t i = 0; i < after.items.size(); ++i)
    EXPECT_EQ(after.items[i].objects, expected.items[i].objects);
}

TEST(ServiceUpdate, RidesTheQueueOverTheWireProtocol) {
  const Workload w = container_workload();
  service::ServiceOptions options;
  options.session = session_options(2);
  options.max_linger = std::chrono::microseconds(50);
  service::QueryService svc(w.pag, options);

  const pag::Delta delta = small_delta(w.pag, w.queries, 9);
  const std::string delta_path = ::testing::TempDir() + "update_test.delta";
  {
    std::ofstream out(delta_path);
    pag::write_delta(out, delta);
  }

  std::ostringstream request_text;
  request_text << "query " << w.queries[0].value() << "\n"
               << "update " << delta_path << "\n"
               << "query " << w.queries[0].value() << "\n"
               << "update /nonexistent/path.delta\n"
               << "update " << delta_path << "\n"  // stale: node count moved on
               << "stats\n";
  std::istringstream in(request_text.str());
  std::ostringstream out;
  EXPECT_EQ(service::serve_stream(svc, in, out), 6u);

  std::vector<std::string> replies;
  {
    std::istringstream r(out.str());
    for (std::string line; std::getline(r, line);) replies.push_back(line);
  }
  ASSERT_EQ(replies.size(), 6u);
  EXPECT_EQ(replies[0].rfind("ok", 0), 0u) << replies[0];
  EXPECT_EQ(replies[1].rfind("ok updated", 0), 0u) << replies[1];
  EXPECT_NE(replies[1].find("rev 1"), std::string::npos) << replies[1];
  EXPECT_EQ(replies[2].rfind("ok", 0), 0u) << replies[2];
  EXPECT_EQ(replies[3].rfind("err ", 0), 0u) << replies[3];
  EXPECT_EQ(replies[4].rfind("err ", 0), 0u) << replies[4];

  const auto stats = svc.stats();
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.update_errors, 2u);
  EXPECT_EQ(stats.pag_revision, 1u);
  EXPECT_NE(stats.to_json().find("\"updates\""), std::string::npos);
}

/// var -> sorted points-to set from a cold sequential engine run.
std::map<std::uint32_t, std::vector<NodeId>> cold_baseline(
    const pag::Pag& pag, const std::vector<NodeId>& queries) {
  cfl::EngineOptions o;
  o.mode = cfl::Mode::kSequential;
  o.threads = 1;
  o.solver.budget = 200'000;
  o.solver.tau_finished = 10;
  o.solver.tau_unfinished = 100;
  o.collect_objects = true;
  const auto r = cfl::Engine(pag, o).run(queries);
  std::map<std::uint32_t, std::vector<NodeId>> m;
  for (std::size_t i = 0; i < r.outcomes.size(); ++i)
    m[r.outcomes[i].var.value()] = r.objects[i];
  return m;
}

/// The tsan target: queries racing an update must each answer with either the
/// pre-update or the post-update truth — never a blend.
TEST(ServiceUpdate, ConcurrentQueriesSeeOldOrNewGraphNeverABlend) {
  const Workload w = container_workload();
  const pag::Delta delta = small_delta(w.pag, w.queries, 13);
  std::string error;
  auto mutated = pag::apply_delta(w.pag, delta, nullptr, &error);
  ASSERT_TRUE(mutated.has_value()) << error;

  const auto before = cold_baseline(w.pag, w.queries);
  const auto after = cold_baseline(*mutated, w.queries);

  const std::string delta_path =
      ::testing::TempDir() + "update_test_concurrent.delta";
  {
    std::ofstream out(delta_path);
    pag::write_delta(out, delta);
  }

  service::ServiceOptions options;
  options.session = session_options(2);
  options.max_linger = std::chrono::microseconds(100);
  service::QueryService svc(w.pag, options);

  std::atomic<std::uint64_t> blended{0};
  auto client = [&](std::uint64_t salt) {
    support::Rng rng(salt);
    for (int i = 0; i < 120; ++i) {
      const NodeId q = w.queries[rng.below(w.queries.size())];
      service::Request request;
      request.verb = service::Verb::kQuery;
      request.a = q;
      const service::Reply reply = svc.call(request);
      (void)svc.node_count();  // validation read racing the swap
      if (reply.status != service::Reply::Status::kOk) continue;
      const bool matches_before = reply.objects == before.at(q.value());
      const bool matches_after = reply.objects == after.at(q.value());
      if (!matches_before && !matches_after) ++blended;
    }
  };

  std::thread t1(client, 101);
  std::thread t2(client, 202);
  service::Request update;
  update.verb = service::Verb::kUpdate;
  update.path = delta_path;
  const service::Reply reply = svc.call(update);
  EXPECT_EQ(reply.status, service::Reply::Status::kOk);
  t1.join();
  t2.join();
  EXPECT_EQ(blended.load(), 0u);

  // After the dust settles, every answer is the post-update truth.
  for (const NodeId q : w.queries) {
    service::Request request;
    request.verb = service::Verb::kQuery;
    request.a = q;
    const service::Reply r = svc.call(request);
    ASSERT_EQ(r.status, service::Reply::Status::kOk);
    EXPECT_EQ(r.objects, after.at(q.value())) << "var " << q.value();
  }
}

// ---- Prefilter staleness across updates ------------------------------------

/// a --new--> oa, b --new--> ob: provably disjoint points-to sets.
struct DisjointPair {
  pag::Pag pag;
  NodeId a, b, oa, ob;
};

DisjointPair disjoint_pair() {
  pag::Pag::Builder b;
  b.set_counts(1, 1, 1, 1);
  DisjointPair g;
  g.a = b.add_local(pag::TypeId(0), pag::MethodId(0));
  g.b = b.add_local(pag::TypeId(0), pag::MethodId(0));
  g.oa = b.add_object(pag::TypeId(0), pag::MethodId(0));
  g.ob = b.add_object(pag::TypeId(0), pag::MethodId(0));
  b.new_edge(g.a, g.oa);
  b.new_edge(g.b, g.ob);
  g.pag = std::move(b).finalize();
  return g;
}

/// The prefilter rebuild runs asynchronously after an update; between the
/// graph swap and the rebuild landing, the session holds only the
/// old-revision result. The definite-no contract requires that window to
/// answer "don't know", never the stale truth — here every update flips the
/// ground truth between no-alias and alias, so any stale answer would be an
/// unsound kNo.
TEST(SessionUpdate, StalePrefilterNeverAnswersAcrossUpdates) {
  const DisjointPair g = disjoint_pair();
  service::Session session(g.pag, session_options(2));
  session.wait_for_prefilter();
  ASSERT_TRUE(session.prefilter_ready());
  EXPECT_TRUE(session.prefilter_no_alias(g.a, g.b));

  // Flip to aliasing: b also points to oa now (add-only → incremental path).
  pag::Delta make_alias(g.pag);
  make_alias.add_edge(EdgeKind::kNew, g.b, g.oa);
  std::string error;
  ASSERT_TRUE(session.update(make_alias, &error)) << error;

  // From this point no_alias(a, b) is untrue; whether the async rebuild has
  // landed yet or not, the session must not claim it.
  EXPECT_FALSE(session.prefilter_no_alias(g.a, g.b));
  session.wait_for_prefilter();
  EXPECT_TRUE(session.prefilter_ready());
  EXPECT_FALSE(session.prefilter_no_alias(g.a, g.b));
  const auto pf = session.prefilter_snapshot();
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(pf->revision(), session.revision());

  // Flip back via a removal (cold-rebuild path: the add-only flag is off
  // once any removal has been seen since the last build).
  pag::Delta unalias(session.node_count());
  unalias.remove_edge(EdgeKind::kNew, g.b, g.oa);
  ASSERT_TRUE(session.update(unalias, &error)) << error;
  // The truth is no-alias again, so both outcomes are legal here: false while
  // the stale rev-1 result is benched, true once the rev-2 rebuild lands. A
  // true answer is only permitted from a result covering the live revision.
  if (session.prefilter_no_alias(g.a, g.b)) {
    const auto snap = session.prefilter_snapshot();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->revision(), session.revision());
  }
  session.wait_for_prefilter();
  EXPECT_TRUE(session.prefilter_no_alias(g.a, g.b));

  // Churn without waiting: the invariant must hold at every revision, not
  // just after quiescence. On even rounds the pair aliases, so a true
  // answer at any point in those rounds would be a staleness bug.
  for (int round = 0; round < 8; ++round) {
    pag::Delta flip(session.node_count());
    if (round % 2 == 0)
      flip.add_edge(EdgeKind::kNew, g.b, g.oa);
    else
      flip.remove_edge(EdgeKind::kNew, g.b, g.oa);
    ASSERT_TRUE(session.update(flip, &error)) << error;
    if (round % 2 == 0) {
      EXPECT_FALSE(session.prefilter_no_alias(g.a, g.b)) << "round " << round;
    }
  }
  session.wait_for_prefilter();
  EXPECT_TRUE(session.prefilter_no_alias(g.a, g.b));  // round 7 removed it
}

/// Same bar one layer up: the service dispatch short-circuits alias queries
/// through the prefilter, so a stale result would surface as a wrong kNo on
/// the wire. Before the update the short-circuit must fire (charged 0,
/// counted as a hit); after it, kNo must never appear again.
TEST(ServiceUpdate, AliasShortCircuitStaysSoundAcrossUpdate) {
  const DisjointPair g = disjoint_pair();
  service::ServiceOptions options;
  options.session = session_options(2);
  options.max_linger = std::chrono::microseconds(50);
  service::QueryService svc(g.pag, options);
  svc.session().wait_for_prefilter();

  service::Request alias;
  alias.verb = service::Verb::kAlias;
  alias.a = g.a;
  alias.b = g.b;
  const service::Reply before = svc.call(alias);
  ASSERT_EQ(before.status, service::Reply::Status::kOk);
  EXPECT_EQ(before.alias, cfl::Solver::AliasAnswer::kNo);
  EXPECT_EQ(before.charged_steps, 0u);  // served by the prefilter
  const auto s = svc.stats();
  EXPECT_TRUE(s.prefilter_ready);
  EXPECT_GE(s.engine.prefilter_hits, 1u);

  pag::Delta make_alias(g.pag);
  make_alias.add_edge(EdgeKind::kNew, g.b, g.oa);
  const std::string delta_path =
      ::testing::TempDir() + "update_test_prefilter.delta";
  {
    std::ofstream out(delta_path);
    pag::write_delta(out, make_alias);
  }
  service::Request update;
  update.verb = service::Verb::kUpdate;
  update.path = delta_path;
  ASSERT_EQ(svc.call(update).status, service::Reply::Status::kOk);

  // Hammer the alias query while the rebuild races: kNo would be unsound.
  for (int i = 0; i < 50; ++i) {
    const service::Reply after = svc.call(alias);
    ASSERT_EQ(after.status, service::Reply::Status::kOk);
    EXPECT_EQ(after.alias, cfl::Solver::AliasAnswer::kMay) << "iteration " << i;
  }
}

}  // namespace
}  // namespace parcfl
