// PAG structure tests: builder/CSR adjacency, field indices, IO round-trip,
// validation, assign-cycle collapsing.

#include <gtest/gtest.h>

#include <sstream>

#include "pag/collapse.hpp"
#include "pag/pag.hpp"
#include "pag/pag_io.hpp"
#include "pag/validate.hpp"
#include "test_util.hpp"

namespace parcfl::pag {
namespace {

Pag tiny() {
  Pag::Builder b;
  const auto l0 = b.add_local(TypeId(0), MethodId(0));
  const auto l1 = b.add_local(TypeId(1), MethodId(0));
  const auto l2 = b.add_local(TypeId(0), MethodId(1));
  const auto g = b.add_global(TypeId(1));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(l0, o);
  b.assign_local(l1, l0);
  b.assign_global(g, l1);
  b.load(l2, l1, FieldId(0));
  b.store(l1, l0, FieldId(0));
  b.param(l2, l0, CallSiteId(0));
  b.ret(l0, l2, CallSiteId(0));
  return std::move(b).finalize();
}

TEST(PagBuilder, CountsAndKinds) {
  const Pag pag = tiny();
  EXPECT_EQ(pag.node_count(), 5u);
  EXPECT_EQ(pag.edge_count(), 7u);
  EXPECT_EQ(pag.field_count(), 1u);
  EXPECT_EQ(pag.call_site_count(), 1u);
  EXPECT_EQ(pag.kind(NodeId(0)), NodeKind::kLocal);
  EXPECT_EQ(pag.kind(NodeId(3)), NodeKind::kGlobal);
  EXPECT_EQ(pag.kind(NodeId(4)), NodeKind::kObject);
  EXPECT_TRUE(pag.is_object(NodeId(4)));
  EXPECT_TRUE(pag.is_variable(NodeId(3)));
  for (unsigned k = 0; k < kEdgeKindCount; ++k)
    EXPECT_EQ(pag.edge_count_of_kind(static_cast<EdgeKind>(k)), 1u);
}

TEST(PagBuilder, InAndOutAdjacencyAgree) {
  const Pag pag = tiny();
  // new: l0 <- o
  ASSERT_EQ(pag.in_edges(NodeId(0), EdgeKind::kNew).size(), 1u);
  EXPECT_EQ(pag.in_edges(NodeId(0), EdgeKind::kNew)[0].other, NodeId(4));
  ASSERT_EQ(pag.out_edges(NodeId(4), EdgeKind::kNew).size(), 1u);
  EXPECT_EQ(pag.out_edges(NodeId(4), EdgeKind::kNew)[0].other, NodeId(0));
  // ld: l2 = l1.f0
  ASSERT_EQ(pag.in_edges(NodeId(2), EdgeKind::kLoad).size(), 1u);
  EXPECT_EQ(pag.in_edges(NodeId(2), EdgeKind::kLoad)[0].other, NodeId(1));
  EXPECT_EQ(pag.in_edges(NodeId(2), EdgeKind::kLoad)[0].aux, 0u);
  ASSERT_EQ(pag.out_edges(NodeId(1), EdgeKind::kLoad).size(), 1u);
  EXPECT_EQ(pag.out_edges(NodeId(1), EdgeKind::kLoad)[0].other, NodeId(2));
}

TEST(PagBuilder, FieldIndices) {
  const Pag pag = tiny();
  // store l1.f0 = l0: entry {base=l1, aux=rhs l0}
  ASSERT_EQ(pag.stores_on_field(FieldId(0)).size(), 1u);
  EXPECT_EQ(pag.stores_on_field(FieldId(0))[0].other, NodeId(1));
  EXPECT_EQ(pag.stores_on_field(FieldId(0))[0].aux, 0u);
  // load l2 = l1.f0: entry {base=l1, aux=dst l2}
  ASSERT_EQ(pag.loads_on_field(FieldId(0)).size(), 1u);
  EXPECT_EQ(pag.loads_on_field(FieldId(0))[0].other, NodeId(1));
  EXPECT_EQ(pag.loads_on_field(FieldId(0))[0].aux, 2u);
}

TEST(PagBuilder, DedupeDropsExactDuplicates) {
  Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  b.assign_local(x, y);
  b.assign_local(x, y);
  b.assign_local(y, x);
  const Pag pag = std::move(b).finalize();
  EXPECT_EQ(pag.edge_count(), 2u);
}

TEST(PagBuilder, NamesOptional) {
  Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  b.set_name(x, "hello");
  const Pag pag = std::move(b).finalize();
  EXPECT_EQ(pag.name(x), "hello");
}

TEST(PagIo, RoundTrip) {
  const auto f = test::fig2();
  const std::string text = write_pag_string(f.lowered.pag);
  std::string error;
  const auto parsed = read_pag_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  EXPECT_EQ(parsed->node_count(), f.lowered.pag.node_count());
  EXPECT_EQ(parsed->edge_count(), f.lowered.pag.edge_count());
  EXPECT_EQ(parsed->field_count(), f.lowered.pag.field_count());
  EXPECT_EQ(parsed->call_site_count(), f.lowered.pag.call_site_count());
  // Node metadata survives.
  for (std::uint32_t i = 0; i < parsed->node_count(); ++i) {
    EXPECT_EQ(parsed->kind(NodeId(i)), f.lowered.pag.kind(NodeId(i)));
    EXPECT_EQ(parsed->node(NodeId(i)).type, f.lowered.pag.node(NodeId(i)).type);
  }
  // Second round-trip is byte-identical (canonical form).
  EXPECT_EQ(write_pag_string(*parsed), text);
}

TEST(PagIo, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(read_pag_string("garbage", &error).has_value());
  EXPECT_FALSE(read_pag_string("parcfl-pag 1\ncounts nodes=1\n", &error).has_value());
  EXPECT_FALSE(read_pag_string(
                   "parcfl-pag 1\ncounts nodes=1\nnode 0 l\nedge new 0 5\n", &error)
                   .has_value());
  EXPECT_FALSE(
      read_pag_string("parcfl-pag 1\ncounts nodes=1\nnode 0 q\n", &error).has_value());
  EXPECT_FALSE(read_pag_string(
                   "parcfl-pag 1\ncounts nodes=2\nnode 0 l\nnode 1 l\nedge ld 0 1\n",
                   &error)
                   .has_value());  // missing f=
}

TEST(PagIo, ParsesMinimalGraph) {
  const std::string text =
      "parcfl-pag 1\n"
      "counts nodes=3 fields=1 callsites=0 types=1 methods=1\n"
      "node 0 l type=0 method=0 app=1 name=x\n"
      "node 1 l type=0 method=0 app=0\n"
      "node 2 o type=0 method=0 app=1\n"
      "edge new 0 2\n"
      "edge assignl 1 0\n";
  std::string error;
  const auto pag = read_pag_string(text, &error);
  ASSERT_TRUE(pag.has_value()) << error;
  EXPECT_EQ(pag->name(NodeId(0)), "x");
  EXPECT_FALSE(pag->node(NodeId(1)).is_application);
  EXPECT_TRUE(is_well_formed(*pag));
}

TEST(PagValidate, AcceptsLoweredPrograms) {
  const auto f = test::fig2();
  const auto errors = validate(f.lowered.pag);
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST(PagValidate, RejectsMalformedEdges) {
  Pag::Builder b;
  const auto l = b.add_local(TypeId(0), MethodId(0));
  const auto g = b.add_global(TypeId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(l, o);
  b.add_edge(EdgeKind::kNew, l, l);          // new from a variable
  b.add_edge(EdgeKind::kAssignLocal, l, g);  // assignl with a global
  b.add_edge(EdgeKind::kLoad, l, g, 0);      // ld with a global base
  b.add_edge(EdgeKind::kAssignLocal, l, o);  // assign from an object
  const Pag pag = std::move(b).finalize();
  const auto errors = validate(pag);
  EXPECT_EQ(errors.size(), 4u);
}

TEST(PagValidate, RejectsOutOfRangeAux) {
  Pag::Builder b;
  b.set_counts(1, 1, 1, 1);
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  b.load(x, y, FieldId(0));
  const Pag ok = std::move(b).finalize();
  EXPECT_TRUE(is_well_formed(ok));

  Pag::Builder b2;
  const auto x2 = b2.add_local(TypeId(0), MethodId(0));
  const auto y2 = b2.add_local(TypeId(0), MethodId(0));
  b2.load(x2, y2, FieldId(7));
  b2.set_counts(3, 0, 1, 1);  // declares fewer fields than used
  const Pag pag2 = std::move(b2).finalize();
  // finalize() widens counts to cover used ids, so this stays well-formed;
  // the check matters for hand-parsed graphs with explicit narrow counts.
  EXPECT_TRUE(is_well_formed(pag2));
}

TEST(PagCollapse, MergesLocalAssignCycles) {
  Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto z = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  b.assign_local(x, y);
  b.assign_local(z, y);  // z hangs off the cycle
  const Pag pag = std::move(b).finalize();

  const auto collapsed = collapse_assign_cycles(pag);
  EXPECT_EQ(collapsed.collapsed_nodes, 1u);
  EXPECT_EQ(collapsed.pag.node_count(), 3u);
  EXPECT_EQ(collapsed.representative[x.value()], collapsed.representative[y.value()]);
  EXPECT_NE(collapsed.representative[x.value()], collapsed.representative[z.value()]);
  // Self-assign edges are gone.
  for (const Edge& e : collapsed.pag.edges())
    EXPECT_FALSE(e.dst == e.src && e.kind == EdgeKind::kAssignLocal);
}

TEST(PagCollapse, DoesNotMergeAcrossMethodsOrKinds) {
  Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(1));  // different method
  b.assign_local(x, y);
  b.assign_local(y, x);
  const auto g1 = b.add_global(TypeId(0));
  const auto l = b.add_local(TypeId(0), MethodId(0));
  b.assign_global(g1, l);
  b.assign_global(l, g1);  // mixed local/global cycle
  const Pag pag = std::move(b).finalize();

  const auto collapsed = collapse_assign_cycles(pag);
  EXPECT_EQ(collapsed.collapsed_nodes, 0u);
  EXPECT_EQ(collapsed.pag.node_count(), pag.node_count());
}

TEST(PagCollapse, MergesGlobalCycles) {
  Pag::Builder b;
  const auto g1 = b.add_global(TypeId(0));
  const auto g2 = b.add_global(TypeId(0));
  b.assign_global(g1, g2);
  b.assign_global(g2, g1);
  const Pag pag = std::move(b).finalize();
  const auto collapsed = collapse_assign_cycles(pag);
  EXPECT_EQ(collapsed.collapsed_nodes, 1u);
  EXPECT_EQ(collapsed.representative[g1.value()], collapsed.representative[g2.value()]);
}

TEST(PagMemory, BytesNonZero) {
  const auto f = test::fig2();
  EXPECT_GT(f.lowered.pag.memory_bytes(), 0u);
}

}  // namespace
}  // namespace parcfl::pag
