// Observability-layer tests: the MetricsRegistry (lock-free counters, gauges
// and histograms with per-thread slabs), the TraceRing, the Prometheus text
// exposition, and the golden-trace determinism guarantee — a single-threaded
// solver run at trace_level 2 must produce byte-identical JSONL across runs.
// The scrape-while-writing stress is this suite's tsan target.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cfl/jmp_store.hpp"
#include "cfl/solver.hpp"
#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "synth/generator.hpp"
#include "test_util.hpp"

namespace parcfl::obs {
namespace {

// ---- MetricsRegistry --------------------------------------------------------

TEST(Metrics, CounterAddsAndAggregates) {
  MetricsRegistry reg;
  const auto c = reg.counter("test_total", "A test counter.");
  EXPECT_EQ(reg.counter_value(c), 0u);
  reg.add(c);
  reg.add(c, 41);
  EXPECT_EQ(reg.counter_value(c), 42u);
}

TEST(Metrics, CountersAreIndependent) {
  MetricsRegistry reg;
  const auto a = reg.counter("a_total", "a");
  const auto b = reg.counter("b_total", "b");
  reg.add(a, 5);
  reg.add(b, 7);
  EXPECT_EQ(reg.counter_value(a), 5u);
  EXPECT_EQ(reg.counter_value(b), 7u);
}

TEST(Metrics, GaugeSetAndMax) {
  MetricsRegistry reg;
  const auto g = reg.gauge("test_gauge", "A test gauge.");
  EXPECT_EQ(reg.gauge_value(g), 0.0);
  reg.set_gauge(g, 2.5);
  EXPECT_EQ(reg.gauge_value(g), 2.5);
  reg.set_gauge(g, 1.0);  // set overwrites, even downward
  EXPECT_EQ(reg.gauge_value(g), 1.0);
  reg.max_gauge(g, 0.5);  // max does not go down
  EXPECT_EQ(reg.gauge_value(g), 1.0);
  reg.max_gauge(g, 9.75);
  EXPECT_EQ(reg.gauge_value(g), 9.75);
}

TEST(Metrics, HistogramBucketsCountAndSum) {
  MetricsRegistry reg;
  const auto h = reg.histogram("test_ms", "A test histogram.", {1, 10, 100});
  reg.observe(h, 0.5);    // bucket le=1
  reg.observe(h, 1.0);    // le=1 (bounds are inclusive upper edges)
  reg.observe(h, 7.0);    // le=10
  reg.observe(h, 5000.0); // +Inf overflow
  const auto snap = reg.histogram_value(h);
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 0u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 7.0 + 5000.0);
}

TEST(Metrics, MultithreadedCountsAreExact) {
  MetricsRegistry reg;
  const auto c = reg.counter("mt_total", "mt");
  const auto h = reg.histogram("mt_ms", "mt", {10});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        reg.add(c);
        reg.observe(h, static_cast<double>(i % 20));
      }
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter_value(c), kThreads * kPerThread);
  const auto snap = reg.histogram_value(h);
  EXPECT_EQ(snap.count, kThreads * kPerThread);
}

// More writer threads than claimable slots: late threads hash onto shared
// slots, which must stay exact (every write is a fetch_add) — only contended.
TEST(Metrics, MoreThreadsThanSlotsStillExact) {
  MetricsRegistry reg;
  const auto c = reg.counter("crowded_total", "crowded");
  constexpr int kThreads =
      static_cast<int>(MetricsRegistry::kMaxThreads) + 8;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) reg.add(c);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter_value(c), kThreads * kPerThread);
}

// Slot release at thread exit: serial short-lived threads must not exhaust
// the 64 claimable slots.
TEST(Metrics, SlotsRecycleAcrossThreadLifetimes) {
  MetricsRegistry reg;
  const auto c = reg.counter("recycle_total", "recycle");
  for (int round = 0; round < 200; ++round) {
    std::thread([&] { reg.add(c); }).join();
  }
  EXPECT_EQ(reg.counter_value(c), 200u);
}

// ---- Prometheus exposition --------------------------------------------------

/// Minimal exposition-format checker: every line is a comment or a
/// `name{labels} value` sample; every sample name was introduced by a # TYPE
/// comment; histogram series carry the right suffixes.
void check_exposition(const std::string& text,
                      std::map<std::string, std::string>& types,
                      std::vector<std::pair<std::string, double>>& samples) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, what, name;
      ls >> hash >> what >> name;
      ASSERT_TRUE(what == "HELP" || what == "TYPE") << line;
      if (what == "TYPE") {
        std::string type;
        ls >> type;
        ASSERT_TRUE(type == "counter" || type == "gauge" ||
                    type == "histogram")
            << line;
        types[name] = type;
      }
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparsable value in: " << line;
    const auto brace = series.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      series = series.substr(0, brace);
    }
    samples.emplace_back(series, v);
  }
}

TEST(Metrics, PrometheusExpositionIsWellFormed) {
  MetricsRegistry reg;
  const auto c = reg.counter("obs_requests_total", "Requests.");
  const auto g = reg.gauge("obs_depth", "Depth.");
  const auto h = reg.histogram("obs_latency_ms", "Latency.", {1, 10});
  reg.add(c, 3);
  reg.set_gauge(g, 4.5);
  reg.observe(h, 0.5);
  reg.observe(h, 99.0);

  const std::string text = reg.render_prometheus();
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.back(), '\n');  // documented: no trailing newline

  std::map<std::string, std::string> types;
  std::vector<std::pair<std::string, double>> samples;
  check_exposition(text + "\n", types, samples);

  EXPECT_EQ(types["obs_requests_total"], "counter");
  EXPECT_EQ(types["obs_depth"], "gauge");
  EXPECT_EQ(types["obs_latency_ms"], "histogram");

  std::map<std::string, std::vector<double>> by_series;
  for (const auto& [name, v] : samples) by_series[name].push_back(v);
  ASSERT_EQ(by_series["obs_requests_total"].size(), 1u);
  EXPECT_EQ(by_series["obs_requests_total"][0], 3.0);
  EXPECT_EQ(by_series["obs_depth"][0], 4.5);
  // Cumulative buckets: le="1" -> 1, le="10" -> 1, le="+Inf" -> 2.
  ASSERT_EQ(by_series["obs_latency_ms_bucket"].size(), 3u);
  EXPECT_EQ(by_series["obs_latency_ms_bucket"][0], 1.0);
  EXPECT_EQ(by_series["obs_latency_ms_bucket"][1], 1.0);
  EXPECT_EQ(by_series["obs_latency_ms_bucket"][2], 2.0);
  EXPECT_EQ(by_series["obs_latency_ms_count"][0], 2.0);
  EXPECT_DOUBLE_EQ(by_series["obs_latency_ms_sum"][0], 99.5);
  // The +Inf bucket must appear literally.
  EXPECT_NE(text.find("obs_latency_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
}

// The tsan target: writers hammer every metric kind while a scraper loops
// aggregation and rendering. Correctness bar: the scrape after the join sees
// every write, and every mid-flight scrape is monotone in the counter.
TEST(Metrics, ScrapeWhileWritingIsSafeAndMonotone) {
  MetricsRegistry reg;
  const auto c = reg.counter("stress_total", "stress");
  const auto g = reg.gauge("stress_gauge", "stress");
  const auto h = reg.histogram("stress_ms", "stress", {1, 10, 100});

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerThread = 5'000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        reg.add(c);
        reg.max_gauge(g, static_cast<double>(t));
        reg.observe(h, static_cast<double>(i % 200));
      }
    });

  std::uint64_t last = 0;
  std::uint64_t scrapes = 0;
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t now = reg.counter_value(c);
      EXPECT_GE(now, last);
      last = now;
      EXPECT_FALSE(reg.render_prometheus().empty());
      ++scrapes;
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GT(scrapes, 0u);
  EXPECT_EQ(reg.counter_value(c), kWriters * kPerThread);
  EXPECT_EQ(reg.histogram_value(h).count, kWriters * kPerThread);
  EXPECT_EQ(reg.gauge_value(g), static_cast<double>(kWriters - 1));
}

// ---- label families ---------------------------------------------------------

// The cardinality guard (ISSUE 7 satellite): a family holds exactly
// `capacity` distinct label values; the value past the boundary degrades to
// the shared overflow series and bumps the warning counter — increments are
// never dropped and registration never aborts.
TEST(Metrics, LabelFamilyCardinalityBoundary) {
  MetricsRegistry reg;
  const auto fam =
      reg.counter_family("fam_requests_total", "Per-tenant requests.",
                         "tenant", 2);

  // Up to capacity: every value gets its own series, re-interning is stable.
  const auto a = reg.labeled(fam, "alpha");
  const auto b = reg.labeled(fam, "beta");  // the capacity-th value fits
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.labeled(fam, "alpha"), a);
  EXPECT_EQ(reg.label_overflow_count(), 0u);

  // Past capacity: both new values collapse onto one overflow series.
  const auto c = reg.labeled(fam, "gamma");
  const auto d = reg.labeled(fam, "delta");
  EXPECT_EQ(c, d);
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
  EXPECT_EQ(reg.label_overflow_count(), 2u);

  // Nothing is dropped: adds to interned and overflowed series all land.
  reg.add(a, 3);
  reg.add(b, 5);
  reg.add(c, 7);
  reg.add(d, 11);  // same series as c
  EXPECT_EQ(reg.counter_value(a), 3u);
  EXPECT_EQ(reg.counter_value(b), 5u);
  EXPECT_EQ(reg.counter_value(c), 18u);

  // Known values keep resolving to their own series after overflow began.
  EXPECT_EQ(reg.labeled(fam, "beta"), b);
  EXPECT_EQ(reg.label_overflow_count(), 2u);

  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("fam_requests_total{tenant=\"alpha\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("fam_requests_total{tenant=\"overflow\"} 18"),
            std::string::npos);
  EXPECT_NE(text.find("parcfl_label_overflow_total 2"), std::string::npos);
}

TEST(Metrics, HistogramFamilyOverflowStillObserves) {
  MetricsRegistry reg;
  const auto fam = reg.histogram_family("fam_latency_ms", "Latency.",
                                        "tenant", 1, {1.0, 10.0});
  const auto a = reg.labeled(fam, "only");
  const auto spill = reg.labeled(fam, "extra");  // past capacity
  EXPECT_NE(a, spill);
  reg.observe(a, 0.5);
  reg.observe(spill, 99.0);
  reg.observe(reg.labeled(fam, "another"), 2.0);  // same overflow series
  EXPECT_EQ(reg.histogram_value(a).count, 1u);
  EXPECT_EQ(reg.histogram_value(spill).count, 2u);
  EXPECT_EQ(reg.label_overflow_count(), 2u);
  EXPECT_NE(reg.render_prometheus().find(
                "fam_latency_ms_bucket{tenant=\"overflow\",le=\"+Inf\"} 2"),
            std::string::npos);
}

// ---- TraceRing --------------------------------------------------------------

TEST(Trace, EmitsInOrder) {
  TraceRing ring(8);
  ring.emit(TraceEvent::kQueryStart, 17, 0);
  ring.emit(TraceEvent::kJmpMiss, 42);
  ring.emit(TraceEvent::kQueryEnd, 100, 1);
  EXPECT_EQ(ring.total(), 3u);
  EXPECT_EQ(ring.size(), 3u);
  std::vector<TraceRecord> records;
  ring.snapshot_into(records);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].event, TraceEvent::kQueryStart);
  EXPECT_EQ(records[0].a, 17u);
  EXPECT_EQ(records[1].event, TraceEvent::kJmpMiss);
  EXPECT_EQ(records[2].b, 1u);
}

TEST(Trace, WrapKeepsNewestWithAbsoluteSeq) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i)
    ring.emit(TraceEvent::kJmpHit, i, static_cast<std::uint32_t>(i));
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  std::vector<TraceRecord> records;
  ring.snapshot_into(records);
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(records[i].a, 6 + i);
  // JSONL seq numbers stay absolute across the wrap.
  const std::string jsonl = ring.to_jsonl();
  EXPECT_NE(jsonl.find("\"seq\":6"), std::string::npos);
  EXPECT_NE(jsonl.find("\"seq\":9"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"seq\":5"), std::string::npos);
}

TEST(Trace, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(Trace, ClearResets) {
  TraceRing ring(8);
  ring.emit(TraceEvent::kQueryStart, 1);
  ring.clear();
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.to_jsonl().empty());
}

TEST(Trace, JsonlNamesEveryEvent) {
  TraceRing ring(16);
  const TraceEvent all[] = {
      TraceEvent::kQueryStart,          TraceEvent::kQueryEnd,
      TraceEvent::kQueryStats,          TraceEvent::kDepthHighWater,
      TraceEvent::kJmpHit,              TraceEvent::kJmpMiss,
      TraceEvent::kJmpPublishFinished,  TraceEvent::kJmpPublishUnfinished,
      TraceEvent::kEarlyTermination,
  };
  for (const TraceEvent e : all) ring.emit(e, 1, 2);
  const std::string jsonl = ring.to_jsonl();
  for (const TraceEvent e : all) {
    const std::string needle =
        std::string("\"ev\":\"") + TraceRing::event_name(e) + "\"";
    EXPECT_NE(jsonl.find(needle), std::string::npos)
        << "missing " << TraceRing::event_name(e);
  }
  // No timestamps unless asked for.
  EXPECT_EQ(jsonl.find("t_ns"), std::string::npos);
}

TEST(Trace, TimestampsAppearWhenEnabled) {
  TraceRing ring(8, /*timestamps=*/true);
  ring.emit(TraceEvent::kQueryStart, 1);
  EXPECT_NE(ring.to_jsonl().find("\"t_ns\":"), std::string::npos);
}

// ---- golden trace -----------------------------------------------------------

struct Workload {
  pag::Pag pag;
  std::vector<pag::NodeId> queries;
};

Workload golden_workload() {
  synth::GeneratorConfig cfg;
  cfg.seed = 33;
  cfg.app_methods = 10;
  cfg.library_methods = 10;
  cfg.containers = 2;
  cfg.container_use_blocks = 8;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<pag::NodeId> queries;
  for (const pag::NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

/// One full single-threaded sharing run at trace_level 2; returns the
/// concatenated per-query JSONL (the ring holds one query at a time).
std::string traced_run(const Workload& w) {
  cfl::ContextTable contexts;
  cfl::JmpStore store;
  cfl::SolverOptions so;
  so.budget = 50'000;
  so.data_sharing = true;
  so.tau_finished = 10;
  so.tau_unfinished = 100;
  so.trace_level = 2;
  cfl::Solver solver(w.pag, contexts, &store, so);
  TraceRing ring(4096);
  solver.set_trace(&ring);
  std::string out;
  for (const pag::NodeId q : w.queries) {
    (void)solver.points_to(q);
    out += ring.to_jsonl();
    out += '\n';
  }
  return out;
}

TEST(GoldenTrace, SingleThreadedTraceIsByteIdenticalAcrossRuns) {
  const Workload w = golden_workload();
  const std::string first = traced_run(w);
  const std::string second = traced_run(w);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The trace is not degenerate: it has real span + jmp events.
  EXPECT_NE(first.find("\"ev\":\"query_start\""), std::string::npos);
  EXPECT_NE(first.find("\"ev\":\"query_end\""), std::string::npos);
  EXPECT_NE(first.find("\"ev\":\"jmp_"), std::string::npos);
}

TEST(GoldenTrace, TraceLevelZeroEmitsNothing) {
  const Workload w = golden_workload();
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  so.budget = 50'000;
  cfl::Solver solver(w.pag, contexts, nullptr, so);
  TraceRing ring(64);
  solver.set_trace(&ring);  // level 0: set_trace must refuse the ring
  EXPECT_EQ(solver.trace(), nullptr);
  (void)solver.points_to(w.queries[0]);
  EXPECT_EQ(ring.total(), 0u);
}

TEST(GoldenTrace, Level1HasSpansButNoJmpEvents) {
  const Workload w = golden_workload();
  cfl::ContextTable contexts;
  cfl::JmpStore store;
  cfl::SolverOptions so;
  so.budget = 50'000;
  so.data_sharing = true;
  so.tau_finished = 10;
  so.tau_unfinished = 100;
  so.trace_level = 1;
  cfl::Solver solver(w.pag, contexts, &store, so);
  TraceRing ring(4096);
  solver.set_trace(&ring);
  std::string all;
  for (const pag::NodeId q : w.queries) {
    (void)solver.points_to(q);
    all += ring.to_jsonl();
    all += '\n';
  }
  EXPECT_NE(all.find("\"ev\":\"query_start\""), std::string::npos);
  EXPECT_NE(all.find("\"ev\":\"query_end\""), std::string::npos);
  EXPECT_NE(all.find("\"ev\":\"depth_high_water\""), std::string::npos);
  EXPECT_EQ(all.find("\"ev\":\"jmp_"), std::string::npos);
}

}  // namespace
}  // namespace parcfl::obs
