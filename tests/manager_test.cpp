// SessionManager tests — the multi-tenant fleet (DESIGN.md §12).
//
//  * lifecycle — lazy open (no load until first acquire), idempotent
//    re-open, close, unknown names;
//  * LRU eviction — resident-count and resident-bytes caps, warm state
//    surviving an evict/reopen cycle, leases pinning sessions;
//  * v3 state — mmap vs streamed loads are byte-identical after
//    re-serialisation, v2 text and v3 binary warm-starts agree (format
//    differential), and the v3 loader refuses truncation/corruption;
//  * concurrency — open/close/evict/query churn across threads (the tsan
//    target), close-while-leased draining the in-flight lease;
//  * service integration — open/close/@tenant verbs end to end, per-tenant
//    admission quota, graceful TCP teardown with a connected client.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cfl/persist.hpp"
#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "pag/pag_io.hpp"
#include "service/manager.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "synth/generator.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace parcfl::service {
namespace {

using pag::NodeId;

struct Workload {
  pag::Pag pag;
  std::vector<NodeId> queries;
};

Workload small_workload(std::uint64_t seed = 7) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 12;
  cfg.library_methods = 12;
  cfg.containers = 3;
  cfg.container_use_blocks = 10;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

Session::Options session_options(unsigned threads = 2) {
  Session::Options o;
  o.engine.threads = threads;
  o.engine.solver.budget = 1'000'000;
  // Miniature workloads: taus scaled down so sharing has something to do.
  o.engine.solver.tau_finished = 5;
  o.engine.solver.tau_unfinished = 50;
  o.prefilter = false;  // deterministic: no background solve racing tests
  // Serve the faithful graph: on miniature workloads reduction leaves
  // traversals too short to ever cross the taus, and the warm-state tests
  // need a non-empty jmp store to carry across evict/reopen.
  o.reduce_graph = false;
  return o;
}

std::string write_workload_pag(const Workload& w, const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::ofstream os(path);
  pag::write_pag(os, w.pag);
  EXPECT_TRUE(os.good());
  return path;
}

/// Each test gets its own spill directory so a warm .state file spilled by
/// one test can never leak into another's cold-start expectations.
std::string fresh_spill_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "mgr_spill_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SessionManager::Options manager_options(std::size_t max_resident,
                                        const std::string& tag) {
  SessionManager::Options o;
  o.session = session_options();
  o.max_resident = max_resident;
  o.spill_dir = fresh_spill_dir(tag);
  return o;
}

std::vector<Session::Item> query_items(const Workload& w, std::size_t n) {
  std::vector<Session::Item> items;
  for (std::size_t i = 0; i < n && i < w.queries.size(); ++i)
    items.push_back(Session::Item{w.queries[i], 0});
  return items;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// Lifecycle

TEST(ManagerTest, OpenIsLazyAndAcquireLoads) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_lazy.pag");
  SessionManager mgr(manager_options(2, "lazy"));

  std::string error;
  ASSERT_TRUE(mgr.open("a", pag_path, &error)) << error;
  EXPECT_EQ(mgr.counters().loads, 0u);  // nothing parsed yet
  EXPECT_TRUE(mgr.known("a"));

  {
    auto lease = mgr.acquire("a", &error);
    ASSERT_TRUE(lease) << error;
    EXPECT_EQ(lease->node_count(), w.pag.node_count());
  }
  EXPECT_EQ(mgr.counters().loads, 1u);
  // Second acquire reuses the resident session — no second load.
  auto lease = mgr.acquire("a", &error);
  ASSERT_TRUE(lease) << error;
  EXPECT_EQ(mgr.counters().loads, 1u);
}

TEST(ManagerTest, OpenRejectsBadPathAndBadName) {
  SessionManager mgr(manager_options(2, "badopen"));
  std::string error;
  EXPECT_FALSE(
      mgr.open("a", testing::TempDir() + "does_not_exist.pag", &error));
  EXPECT_FALSE(mgr.open("..", "/dev/null", &error));
  EXPECT_FALSE(mgr.open("bad name", "/dev/null", &error));
  EXPECT_FALSE(mgr.known("a"));
}

TEST(ManagerTest, OpenIsIdempotentForSamePathOnly) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_idem.pag");
  const std::string other = write_workload_pag(w, "mgr_idem2.pag");
  SessionManager mgr(manager_options(2, "idem"));
  std::string error;
  ASSERT_TRUE(mgr.open("a", pag_path, &error));
  EXPECT_TRUE(mgr.open("a", pag_path, &error));  // same registration
  EXPECT_FALSE(mgr.open("a", other, &error));    // conflicting path
  EXPECT_EQ(mgr.counters().opens, 1u);
}

TEST(ManagerTest, CloseUnregistersAndUnknownNamesError) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_close.pag");
  SessionManager mgr(manager_options(2, "close"));
  std::string error;
  ASSERT_TRUE(mgr.open("a", pag_path, &error));
  ASSERT_TRUE(mgr.close("a", &error)) << error;
  EXPECT_FALSE(mgr.known("a"));
  EXPECT_FALSE(mgr.close("a", &error));
  EXPECT_FALSE(mgr.acquire("a", &error));
}

// Close + re-open of a tenant name with a *different* graph must not leave
// the first graph's spilled warm state behind: it would shadow the new
// registration's future spills forever. The reopened session starts cold,
// the stale file is unlinked, and the stale_spills counter records it.
TEST(ManagerTest, StaleSpillFromReopenedNameIsUnlinked) {
  const Workload w1 = small_workload(7);
  const Workload w2 = small_workload(8);
  const std::string pag1 = write_workload_pag(w1, "mgr_stale1.pag");
  const std::string pag2 = write_workload_pag(w2, "mgr_stale2.pag");
  auto options = manager_options(2, "stale");
  SessionManager mgr(options);
  std::string error;

  ASSERT_TRUE(mgr.open("t", pag1, &error));
  {
    auto lease = mgr.acquire("t", &error);
    ASSERT_TRUE(lease) << error;
    lease->run_batch(query_items(w1, 24));  // dirty so close() spills
  }
  ASSERT_TRUE(mgr.close("t", &error)) << error;
  const std::string state_path = options.spill_dir + "/t.state";
  ASSERT_TRUE(std::filesystem::exists(state_path));

  // Same name, different graph: the first graph's spill is now stale.
  ASSERT_TRUE(mgr.open("t", pag2, &error));
  {
    auto lease = mgr.acquire("t", &error);
    ASSERT_TRUE(lease) << error;
    // The mismatched spill was ignored — this is a cold session.
    EXPECT_EQ(lease->store().entry_count(), 0u);
    lease->run_batch(query_items(w2, 8));
  }
  EXPECT_EQ(mgr.counters().stale_spills, 1u);
  EXPECT_FALSE(std::filesystem::exists(state_path));

  // And the tenant's own spills work again: evict-by-close rewrites the
  // state file for the *new* graph, which a reopen accepts as warm.
  ASSERT_TRUE(mgr.close("t", &error)) << error;
  ASSERT_TRUE(std::filesystem::exists(state_path));
  ASSERT_TRUE(mgr.open("t", pag2, &error));
  {
    auto lease = mgr.acquire("t", &error);
    ASSERT_TRUE(lease) << error;
  }
  EXPECT_EQ(mgr.counters().stale_spills, 1u);  // unchanged: spill was fresh
}

// ---------------------------------------------------------------------------
// Eviction

TEST(ManagerTest, LruEvictionAtResidentCap) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_lru.pag");
  SessionManager mgr(manager_options(1, "lru"));
  std::string error;
  ASSERT_TRUE(mgr.open("a", pag_path, &error));
  ASSERT_TRUE(mgr.open("b", pag_path, &error));

  { auto lease = mgr.acquire("a", &error); ASSERT_TRUE(lease) << error; }
  // Loading b pushes the fleet to 2 resident > cap 1; a is LRU and idle.
  { auto lease = mgr.acquire("b", &error); ASSERT_TRUE(lease) << error; }
  const auto c = mgr.counters();
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.resident, 1u);

  // Reopening a is counted as a reopen, not a first load, and evicts b.
  { auto lease = mgr.acquire("a", &error); ASSERT_TRUE(lease) << error; }
  EXPECT_EQ(mgr.counters().reopens, 1u);
  EXPECT_EQ(mgr.counters().evictions, 2u);
}

TEST(ManagerTest, WarmStateSurvivesEvictReopen) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_warm.pag");
  SessionManager mgr(manager_options(1, "warm"));
  std::string error;
  ASSERT_TRUE(mgr.open("a", pag_path, &error));
  ASSERT_TRUE(mgr.open("b", pag_path, &error));

  const auto items = query_items(w, 24);
  std::vector<Session::ItemResult> cold_results;
  std::uint64_t warm_entries = 0;
  {
    auto lease = mgr.acquire("a", &error);
    ASSERT_TRUE(lease) << error;
    cold_results = lease->run_batch(items).items;
    warm_entries = lease->store().entry_count();
  }
  EXPECT_GT(warm_entries, 0u);

  { auto lease = mgr.acquire("b", &error); ASSERT_TRUE(lease) << error; }
  ASSERT_EQ(mgr.counters().evictions, 1u);

  // The reopened session warm-starts from the spilled v3 state: the jmp
  // entries are back before any query runs, and answers are unchanged.
  auto lease = mgr.acquire("a", &error);
  ASSERT_TRUE(lease) << error;
  EXPECT_EQ(lease->store().entry_count(), warm_entries);
  const auto warm_results = lease->run_batch(items).items;
  ASSERT_EQ(warm_results.size(), cold_results.size());
  for (std::size_t i = 0; i < warm_results.size(); ++i)
    EXPECT_EQ(warm_results[i].objects, cold_results[i].objects) << i;
}

TEST(ManagerTest, ByteCapEvicts) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_bytes.pag");
  auto options = manager_options(8, "bytes");  // count-cap slack; bytes bind
  options.max_resident_bytes = 1;              // any session is over
  SessionManager mgr(options);
  std::string error;
  ASSERT_TRUE(mgr.open("a", pag_path, &error));
  ASSERT_TRUE(mgr.open("b", pag_path, &error));
  { auto lease = mgr.acquire("a", &error); ASSERT_TRUE(lease) << error; }
  { auto lease = mgr.acquire("b", &error); ASSERT_TRUE(lease) << error; }
  // Both idle and both over the byte budget: everything evictable goes.
  EXPECT_EQ(mgr.counters().resident, 0u);
  EXPECT_GE(mgr.counters().evictions, 2u);
}

TEST(ManagerTest, LeasePinsAgainstEviction) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_pin.pag");
  SessionManager mgr(manager_options(1, "pin"));
  std::string error;
  ASSERT_TRUE(mgr.open("a", pag_path, &error));
  ASSERT_TRUE(mgr.open("b", pag_path, &error));

  auto held = mgr.acquire("a", &error);
  ASSERT_TRUE(held) << error;
  Session* held_session = held.get();
  // b loading makes the fleet over-cap, but a holds a lease — no candidate.
  auto other = mgr.acquire("b", &error);
  ASSERT_TRUE(other) << error;
  EXPECT_EQ(mgr.counters().evictions, 0u);
  EXPECT_EQ(mgr.counters().resident, 2u);
  // The held session is still the same object and still answers.
  EXPECT_EQ(held.get(), held_session);
  const auto items = query_items(w, 2);
  EXPECT_GT(held->run_batch(items).items.size(), 0u);
  other = SessionManager::Lease();  // release b: a still leased, b LRU-able
  held = SessionManager::Lease();   // now a is idle; caps enforce on release
  EXPECT_EQ(mgr.counters().resident, 1u);
  EXPECT_EQ(mgr.counters().evictions, 1u);
}

// ---------------------------------------------------------------------------
// v3 state format

/// Run a few queries and spill the warm state as v3. Reduction is off so the
/// state's fingerprint is over `w.pag` itself and the cfl:: loaders can be
/// driven directly against it.
std::string spill_v3_state(const Workload& w, const std::string& tag) {
  auto o = session_options();
  o.reduce_graph = false;
  Session session(w.pag, std::move(o));
  const auto items = query_items(w, 24);
  session.run_batch(items);
  EXPECT_GT(session.store().entry_count(), 0u);
  const std::string dir = fresh_spill_dir(tag);
  const std::string state = dir + "/s.state";
  bool wrote_pag = false;
  std::string error;
  EXPECT_TRUE(session.spill(state, dir + "/s.pag", &wrote_pag, &error))
      << error;
  EXPECT_FALSE(wrote_pag);  // no deltas applied — the source graph stands
  return state;
}

TEST(ManagerTest, MmapAndStreamLoadsAreByteIdentical) {
  const Workload w = small_workload();
  const std::string v3 = spill_v3_state(w, "v3ident");

  // Load the same file twice — once zero-copy via mmap, once through the
  // streamed fallback — and re-serialise both. The v3 writer is
  // deterministic (key-sorted, identity remap into fresh tables), so any
  // divergence in what was loaded shows up as a byte difference.
  auto reload_and_save = [&](cfl::StateLoadMode mode, const std::string& out) {
    cfl::ContextTable contexts;
    cfl::JmpStore store;
    std::string e;
    ASSERT_TRUE(
        cfl::load_sharing_state_file_v3(v3, w.pag, contexts, store, mode, &e))
        << e;
    EXPECT_GT(store.entry_count(), 0u);
    ASSERT_TRUE(
        cfl::save_sharing_state_file_v3(out, w.pag, contexts, store, &e))
        << e;
  };
  const std::string via_mmap = testing::TempDir() + "mgr_v3_mmap.state";
  const std::string via_stream = testing::TempDir() + "mgr_v3_stream.state";
  reload_and_save(cfl::StateLoadMode::kMmap, via_mmap);
  reload_and_save(cfl::StateLoadMode::kStream, via_stream);
  const std::string a = slurp(via_mmap);
  const std::string b = slurp(via_stream);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, slurp(v3));  // and identical to the original snapshot
}

TEST(ManagerTest, TextV2AndBinaryV3WarmStartsAgree) {
  const Workload w = small_workload();
  auto base_options = [] {
    auto o = session_options();
    o.reduce_graph = false;
    return o;
  };
  Session session(w.pag, base_options());
  const auto items = query_items(w, 24);
  const auto cold = session.run_batch(items).items;

  const std::string dir = fresh_spill_dir("v2v3");
  const std::string v2 = dir + "/s.v2state";
  const std::string v3 = dir + "/s.state";
  std::string error;
  ASSERT_TRUE(session.save(v2, &error)) << error;  // text format
  bool wrote_pag = false;
  ASSERT_TRUE(session.spill(v3, dir + "/s.pag", &wrote_pag, &error)) << error;

  // Warm-start two fresh sessions through load_sharing_state_file_any (the
  // Session ctor path) and compare entry counts and answers — against each
  // other and against the cold run.
  auto warm_session = [&](const std::string& state_path) {
    auto o = base_options();
    o.state_path = state_path;
    return std::make_unique<Session>(w.pag, std::move(o));
  };
  auto from_v2 = warm_session(v2);
  auto from_v3 = warm_session(v3);
  EXPECT_GT(from_v3->store().entry_count(), 0u);
  EXPECT_EQ(from_v2->store().entry_count(), from_v3->store().entry_count());
  const auto r2 = from_v2->run_batch(items).items;
  const auto r3 = from_v3->run_batch(items).items;
  ASSERT_EQ(r2.size(), cold.size());
  ASSERT_EQ(r3.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(r2[i].objects, cold[i].objects) << i;
    EXPECT_EQ(r3[i].objects, cold[i].objects) << i;
  }
}

TEST(ManagerTest, V3LoaderRejectsTruncationAndCorruption) {
  const Workload w = small_workload();
  const std::string bytes = slurp(spill_v3_state(w, "v3hostile"));
  ASSERT_GT(bytes.size(), 64u);

  // Every proper prefix must be rejected, never crash.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{7}, std::size_t{63}, bytes.size() / 2,
        bytes.size() - 1}) {
    cfl::ContextTable contexts;
    cfl::JmpStore store;
    std::string e;
    EXPECT_FALSE(cfl::load_sharing_state_v3(bytes.data(), cut, w.pag, contexts,
                                            store, &e))
        << "prefix " << cut;
  }
  // Flip a bit in the header's revision field: the epoch guard must refuse
  // state stamped for a different delta epoch.
  std::string corrupt = bytes;
  corrupt[24] = static_cast<char>(corrupt[24] ^ 0x40);
  cfl::ContextTable contexts;
  cfl::JmpStore store;
  std::string e;
  EXPECT_FALSE(cfl::load_sharing_state_v3(corrupt.data(), corrupt.size(),
                                          w.pag, contexts, store, &e));
}

// ---------------------------------------------------------------------------
// Concurrency (the tsan target)

TEST(ManagerTest, ConcurrentOpenCloseQueryChurn) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_churn.pag");
  SessionManager mgr(manager_options(1, "churn"));  // tight cap: evict a lot
  std::string error;
  for (const char* name : {"a", "b", "c"})
    ASSERT_TRUE(mgr.open(name, pag_path, &error)) << error;

  constexpr int kThreads = 4;
  constexpr int kIters = 12;
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const char* names[] = {"a", "b", "c"};
      const auto items = query_items(w, 2);
      for (int i = 0; i < kIters; ++i) {
        const char* name = names[(t + i) % 3];
        if (t == 0 && i % 5 == 4) {
          // Churn the registry itself: close and immediately re-open.
          std::string e;
          if (mgr.close(name, &e)) mgr.open(name, pag_path, &e);
          continue;
        }
        std::string e;
        auto lease = mgr.acquire(name, &e);
        if (!lease) continue;  // closed under us — acceptable, not a crash
        answered += lease->run_batch(items).items.size();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(answered.load(), 0u);
  EXPECT_GT(mgr.counters().evictions, 0u);
}

TEST(ManagerTest, CloseWhileLeasedWaitsForTheLease) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_cwq.pag");
  SessionManager mgr(manager_options(2, "cwq"));
  std::string error;
  ASSERT_TRUE(mgr.open("a", pag_path, &error));

  auto lease = mgr.acquire("a", &error);
  ASSERT_TRUE(lease) << error;
  std::atomic<bool> closed{false};
  std::thread closer([&] {
    std::string e;
    EXPECT_TRUE(mgr.close("a", &e)) << e;
    closed.store(true, std::memory_order_release);
  });
  // The close must block while the lease lives.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(closed.load(std::memory_order_acquire));
  const auto items = query_items(w, 2);
  EXPECT_GT(lease->run_batch(items).items.size(), 0u);
  lease = SessionManager::Lease();  // release → close proceeds
  closer.join();
  EXPECT_TRUE(closed.load());
  EXPECT_FALSE(mgr.known("a"));
}

// ---------------------------------------------------------------------------
// Service integration

ServiceOptions tenant_service_options(const std::string& tag) {
  ServiceOptions o;
  o.session = session_options();
  o.max_sessions = 1;
  o.spill_dir = fresh_spill_dir("svc_" + tag);
  o.max_linger = std::chrono::microseconds(100);
  return o;
}

TEST(ManagerTest, ServiceOpenQueryCloseRoundTrip) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_svc.pag");
  QueryService svc(w.pag, tenant_service_options("roundtrip"));

  Request open;
  open.verb = Verb::kOpen;
  open.tenant = "acme";
  open.path = pag_path;
  Reply r = svc.call(std::move(open));
  ASSERT_EQ(r.status, Reply::Status::kOk) << r.text;

  // The tenant serves the same graph as the default session here, so the
  // prefixed query must answer exactly like the bare one.
  Request q;
  q.verb = Verb::kQuery;
  q.tenant = "acme";
  q.a = w.queries.front();
  const Reply tenant_reply = svc.call(q);
  ASSERT_EQ(tenant_reply.status, Reply::Status::kOk) << tenant_reply.text;
  Request bare = q;
  bare.tenant.clear();
  const Reply default_reply = svc.call(std::move(bare));
  ASSERT_EQ(default_reply.status, Reply::Status::kOk);
  EXPECT_EQ(tenant_reply.objects, default_reply.objects);

  // Unknown tenants and out-of-range tenant node ids fail cleanly.
  Request unknown = q;
  unknown.tenant = "nobody";
  EXPECT_EQ(svc.call(std::move(unknown)).status, Reply::Status::kError);
  Request out_of_range = q;
  out_of_range.a = NodeId(w.pag.node_count() + 5);
  EXPECT_EQ(svc.call(std::move(out_of_range)).status, Reply::Status::kError);

  Request close;
  close.verb = Verb::kClose;
  close.tenant = "acme";
  r = svc.call(std::move(close));
  EXPECT_EQ(r.status, Reply::Status::kOk) << r.text;
  EXPECT_EQ(svc.call(q).status, Reply::Status::kError);  // gone

  const ServiceStats stats = svc.stats();
  EXPECT_GE(stats.open_tenants, 1u);  // the default tenant remains
}

TEST(ManagerTest, ServiceWireProtocolTenantVerbs) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_wire.pag");
  QueryService svc(w.pag, tenant_service_options("wire"));

  std::istringstream in("open acme " + pag_path + "\n@acme query " +
                        std::to_string(w.queries.front().value()) +
                        "\nclose acme\n@acme query 0\nopen .. /x\nquit\n");
  std::ostringstream out;
  serve_stream(svc, in, out);
  const std::string reply = out.str();
  EXPECT_NE(reply.find("ok opened acme"), std::string::npos) << reply;
  EXPECT_NE(reply.find("ok closed acme"), std::string::npos) << reply;
  EXPECT_NE(reply.find("unknown tenant"), std::string::npos) << reply;
  EXPECT_NE(reply.find("err"), std::string::npos) << reply;
}

TEST(ManagerTest, PerTenantQuotaShedsOnlyTheNoisyTenant) {
  const Workload w = small_workload();
  const std::string pag_path = write_workload_pag(w, "mgr_quota.pag");
  auto options = tenant_service_options("quota");
  options.tenant_max_queue = 2;
  options.max_linger = std::chrono::microseconds(50'000);  // hold the queue
  QueryService svc(w.pag, options);

  Request open;
  open.verb = Verb::kOpen;
  open.tenant = "noisy";
  open.path = pag_path;
  ASSERT_EQ(svc.call(std::move(open)).status, Reply::Status::kOk);

  // Flood one tenant past its quota while the linger holds dispatch back.
  std::vector<std::future<Reply>> futures;
  for (int i = 0; i < 8; ++i) {
    Request q;
    q.verb = Verb::kQuery;
    q.tenant = "noisy";
    q.a = w.queries.front();
    futures.push_back(svc.submit(std::move(q)));
  }
  // A default-tenant request admitted during the flood is not shed.
  Request bare;
  bare.verb = Verb::kQuery;
  bare.a = w.queries.front();
  const Reply bare_reply = svc.call(std::move(bare));
  EXPECT_NE(bare_reply.status, Reply::Status::kShedOverload);

  std::uint64_t shed = 0;
  for (auto& f : futures)
    if (f.get().status == Reply::Status::kShedOverload) ++shed;
  EXPECT_GE(shed, 1u);
  EXPECT_GE(svc.stats().shed_overload, shed);
}

#ifndef _WIN32
TEST(ManagerTest, GracefulTcpTeardownWithConnectedClient) {
  const Workload w = small_workload();
  QueryService svc(w.pag, tenant_service_options("teardown"));
  std::string error;
  TcpServer server(svc, 0, &error);
  ASSERT_TRUE(server.ok()) << error;
  std::thread serving([&] { server.serve(); });

  // Connect, complete one request, then stay connected and idle.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string line =
      "query " + std::to_string(w.queries.front().value()) + "\n";
  ASSERT_EQ(::send(fd, line.data(), line.size(), 0),
            static_cast<ssize_t>(line.size()));
  char buf[4096];
  ASSERT_GT(::recv(fd, buf, sizeof(buf), 0), 0);  // got the reply

  // Shutdown with the client still connected must not hang: the handler
  // blocked in recv is half-closed, drains, and joins.
  server.shutdown();
  serving.join();
  // The client observes EOF.
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
}
#endif

}  // namespace
}  // namespace parcfl::service
