// .jir text-frontend tests: the Fig. 2 program written as source must give
// the paper's answers; every statement shape parses; errors carry line info.

#include <gtest/gtest.h>

#include "andersen/andersen.hpp"
#include "cfl/solver.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "pag/validate.hpp"

namespace parcfl::frontend {
namespace {

const char* kFig2Source = R"(
# The paper's Fig. 2 Vector example.
class Object {}
class ObjectArray { arr: Object; }
class Vector { elems: ObjectArray; }
class String extends Object {}
class Integer extends Object {}

method lib Vector_init(this: Vector) {
  t: ObjectArray = new ObjectArray;
  this.elems = t;
}

method lib Vector_add(this: Vector, e: Object) {
  t: ObjectArray = this.elems;
  t.arr = e;
}

method lib Vector_get(this: Vector): Object {
  t: ObjectArray = this.elems;
  r: Object = t.arr;
  return r;
}

method app main() {
  v1: Vector = new Vector;
  call Vector_init(v1);
  n1: String = new String;
  call Vector_add(v1, n1);
  s1: Object = call Vector_get(v1);
  v2: Vector = new Vector;
  call Vector_init(v2);
  n2: Integer = new Integer;
  call Vector_add(v2, n2);
  s2: Object = call Vector_get(v2);
}
)";

struct Compiled {
  Program program;
  LoweredProgram lowered;
};

Compiled compile(const std::string& source) {
  ParseError error;
  auto program = parse_jir(source, &error);
  EXPECT_TRUE(program.has_value()) << error.to_string();
  Compiled c{std::move(*program), {}};
  LowerOptions lo;
  lo.record_names = true;
  c.lowered = lower(c.program, lo);
  return c;
}

pag::NodeId var_named(const Compiled& c, const std::string& name) {
  for (std::size_t i = 0; i < c.program.vars().size(); ++i)
    if (c.program.vars()[i].name == name)
      return c.lowered.node_of(VarId(static_cast<std::uint32_t>(i)));
  ADD_FAILURE() << "no variable named " << name;
  return pag::NodeId::invalid();
}

TEST(Parser, Fig2SourceGivesPaperAnswers) {
  const auto c = compile(kFig2Source);
  EXPECT_TRUE(pag::is_well_formed(c.lowered.pag));

  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  cfl::Solver solver(c.lowered.pag, contexts, nullptr, so);

  const auto s1 = solver.points_to(var_named(c, "s1"));
  const auto s2 = solver.points_to(var_named(c, "s2"));
  ASSERT_EQ(s1.nodes().size(), 1u);  // only the String allocation
  ASSERT_EQ(s2.nodes().size(), 1u);  // only the Integer allocation
  EXPECT_NE(s1.nodes()[0], s2.nodes()[0]);

  // Context-insensitively they conflate.
  cfl::SolverOptions ci;
  ci.context_sensitive = false;
  cfl::Solver ci_solver(c.lowered.pag, contexts, nullptr, ci);
  EXPECT_EQ(ci_solver.points_to(var_named(c, "s1")).nodes().size(), 2u);
}

TEST(Parser, AllStatementShapes) {
  const char* source = R"(
    class T { f: T; }
    global g: T;
    method app m(p: T): T {
      a: T = new T;
      b: T = a;          // assign
      c: T = (T) b;      // cast
      a.f = c;           // store
      d: T = a.f;        // load
      g = d;             // global write
      e: T = g;          // global read
      r: T = call m(e);  // recursive call with receiver
      return r;
    }
  )";
  const auto c = compile(source);
  EXPECT_EQ(c.program.statement_count(), 9u);  // incl. return's assign
  EXPECT_EQ(c.lowered.casts.size(), 1u);
  // Self-recursive call is collapsed by lowering.
  EXPECT_EQ(c.lowered.collapsed_call_sites, 1u);
  EXPECT_TRUE(pag::is_well_formed(c.lowered.pag));

  // Round-trip sanity: the analysis can answer on it.
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  cfl::Solver solver(c.lowered.pag, contexts, nullptr, so);
  const auto r = solver.points_to(var_named(c, "d"));
  EXPECT_EQ(r.status, cfl::QueryStatus::kComplete);
  EXPECT_EQ(r.nodes().size(), 1u);
}

TEST(Parser, ExtendsAndSubtyping) {
  const char* source = R"(
    class Derived extends Base {}
    class Base {}
    method app m() { x: Derived = new Derived; }
  )";
  ParseError error;
  const auto p = parse_jir(source, &error);
  ASSERT_TRUE(p.has_value()) << error.to_string();
  // Forward reference to Base resolved by the prescan.
  const auto& types = p->types();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_TRUE(p->is_subtype(TypeId(0), TypeId(1)));
  EXPECT_FALSE(p->is_subtype(TypeId(1), TypeId(0)));
}

TEST(Parser, ForwardMethodCalls) {
  const char* source = R"(
    class T {}
    method app caller() {
      x: T = call helper();
    }
    method lib helper(): T {
      y: T = new T;
      return y;
    }
  )";
  const auto c = compile(source);
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  cfl::Solver solver(c.lowered.pag, contexts, nullptr, so);
  EXPECT_EQ(solver.points_to(var_named(c, "x")).nodes().size(), 1u);
}

TEST(Parser, QueriesAreAppLocalsOnly) {
  const auto c = compile(kFig2Source);
  // main's 6 declared locals (library methods contribute none).
  EXPECT_EQ(c.lowered.queries.size(), 6u);
}

struct ErrorCase {
  const char* source;
  const char* expect;  // substring of the error message
};

class ParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrorTest, ReportsUsefulErrors) {
  ParseError error;
  const auto p = parse_jir(GetParam().source, &error);
  EXPECT_FALSE(p.has_value());
  EXPECT_NE(error.to_string().find(GetParam().expect), std::string::npos)
      << "got: " << error.to_string();
  EXPECT_GT(error.line, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        ErrorCase{"class T {} class T {}", "duplicate class"},
        ErrorCase{"wibble", "expected 'class'"},
        ErrorCase{"class T {} method app m() { x: U = new T; }", "unknown type"},
        ErrorCase{"class T {} method app m() { x = y; }", "unknown variable"},
        ErrorCase{"class T {} method app m() { x: T = call nope(); }",
                  "unknown method"},
        ErrorCase{"class T {} method app m(a: T) { y: T = call m(); }",
                  "wrong arity"},
        ErrorCase{"class T {} method app m() { x: T = new T; x: T = new T; }",
                  "redeclaration"},
        ErrorCase{"class T { f: T; } method app m() { x: T = new T; y: T = x.g; }",
                  "unknown field"},
        ErrorCase{"class A extends B {} class B extends A {}", "subtype cycle"},
        ErrorCase{"class T {} method app m() { x: T @ }", "unexpected character"},
        ErrorCase{"class T {} method app m() { x: T = new T", "expected ';'"}));

}  // namespace
}  // namespace parcfl::frontend
