// Concurrency coverage for the epoch-protected sharing-state read path
// (DESIGN.md §9): EpochDomain reclamation semantics, ShardedMap readers
// racing writers and retain(), JmpStore lookups racing erase_if under a
// pin, a solver-level round stress (concurrent lookups + batched publish,
// between-batch erase_if per the invalidation contract), the ContextTable
// thread-local interning cache, and the batched-publication property tests
// (first-wins preserved; identical 4-mode outcomes vs immediate
// publication). Built for tsan: every test keeps its thread count modest and
// its invariants exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "cfl/context.hpp"
#include "cfl/engine.hpp"
#include "cfl/jmp_store.hpp"
#include "cfl/solver.hpp"
#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "support/ebr.hpp"
#include "support/sharded_map.hpp"
#include "synth/generator.hpp"

namespace parcfl {
namespace {

using support::EpochGuard;
using support::ShardedMap;
using support::global_epoch_domain;

// ---- EpochDomain ---------------------------------------------------------

struct CountedObj {
  std::atomic<int>* freed;
};

void retire_counted(std::atomic<int>& freed) {
  global_epoch_domain().retire(new CountedObj{&freed}, [](void* p) {
    auto* obj = static_cast<CountedObj*>(p);
    obj->freed->fetch_add(1, std::memory_order_relaxed);
    delete obj;
  });
}

TEST(Ebr, ActiveGuardBlocksReclamation) {
  auto& domain = global_epoch_domain();
  std::atomic<int> freed{0};
  {
    EpochGuard guard(domain);
    retire_counted(freed);
    // The item was retired at (or after) our pinned epoch; no number of
    // collect() calls may free it while we stay pinned.
    for (int i = 0; i < 5; ++i) domain.collect();
    EXPECT_EQ(freed.load(), 0);
  }
  // Unpinned: two epoch advances put the retirement two epochs behind.
  domain.collect();
  domain.collect();
  EXPECT_EQ(freed.load(), 1);
}

TEST(Ebr, NestedGuardsKeepTheOuterPin) {
  auto& domain = global_epoch_domain();
  std::atomic<int> freed{0};
  {
    EpochGuard outer(domain);
    retire_counted(freed);
    {
      EpochGuard inner(domain);  // nesting must not unpin on destruction
    }
    for (int i = 0; i < 5; ++i) domain.collect();
    EXPECT_EQ(freed.load(), 0) << "inner guard destruction dropped the pin";
  }
  domain.collect();
  domain.collect();
  EXPECT_EQ(freed.load(), 1);
}

TEST(Ebr, UnpinnedRetirementsReclaimAfterTwoCollects) {
  auto& domain = global_epoch_domain();
  std::atomic<int> freed{0};
  for (int i = 0; i < 10; ++i) retire_counted(freed);
  domain.collect();
  domain.collect();
  EXPECT_EQ(freed.load(), 10);
}

// ---- ShardedMap under concurrency ---------------------------------------

TEST(ConcurrencyStress, ShardedMapReadersVsWritersAndRetain) {
  // Writers publish value = key * 3 under first-wins; readers must only ever
  // observe that value (a torn or stale-node read would surface here), while
  // the main thread periodically drops odd keys via retain() — exercising
  // table rebuild + node retirement against live lock-free readers.
  ShardedMap<std::uint64_t, std::uint64_t> map;
  constexpr std::uint64_t kKeys = 512;
  constexpr int kReaders = 3;
  constexpr int kWriters = 2;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_values{0};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      std::uint64_t probe = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = probe++ % kKeys;
        std::uint64_t v = 0;
        if (map.find_copy(k, v) && v != k * 3)
          bad_values.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (std::uint64_t k = w; k < kKeys; k += kWriters)
          map.insert_if_absent(k, k * 3);
        // Exercise the copy-on-write path too: a declined upsert must not
        // change the stored value.
        map.upsert((round++ * 7) % kKeys, [](std::uint64_t&) { return false; });
      }
    });
  }

  for (int round = 0; round < 50; ++round) {
    map.retain([](std::uint64_t k, std::uint64_t) { return (k & 1) == 0; });
    global_epoch_domain().collect();
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  EXPECT_EQ(bad_values.load(), 0u);
  // Quiesced: the relaxed size counter must now be exact.
  std::size_t counted = 0;
  map.for_each_copy([&](std::uint64_t, std::uint64_t) { ++counted; });
  EXPECT_EQ(map.size(), counted);
}

// ---- JmpStore lookups vs erase_if under a pin ----------------------------

TEST(ConcurrencyStress, JmpStoreLookupRacesEraseIfUnderPin) {
  // Readers hold store.pin() across lookup + record dereference while an
  // eraser drops and a writer republishes entries. EBR must keep every
  // dereferenced record alive (asan/tsan validate the claim); the payload
  // invariant (targets[0].node == node + 1) catches torn publication.
  cfl::JmpStore store;
  constexpr std::uint32_t kKeys = 256;
  auto key_of = [](std::uint32_t i) {
    return cfl::JmpStore::key(cfl::Direction::kBackward, pag::NodeId(i),
                              cfl::CtxId(0));
  };
  auto publish = [&](std::uint32_t i) {
    store.insert_finished(key_of(i), /*cost=*/100 + i,
                          {cfl::JmpTarget{pag::NodeId(i + 1), cfl::CtxId(0), i}});
  };
  for (std::uint32_t i = 0; i < kKeys; ++i) publish(i);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_records{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      std::uint32_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto pin = store.pin();
        cfl::JmpStore::Lookup lk;
        if (store.lookup(key_of(i % kKeys), lk) && lk.finished != nullptr) {
          if (lk.finished->targets.empty() ||
              lk.finished->targets[0].node.value() != (i % kKeys) + 1)
            bad_records.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }
  threads.emplace_back([&] {  // writer: keep the store populated
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) publish(i++ % kKeys);
  });

  for (int round = 0; round < 200; ++round) {
    // Drop a rotating quarter of the key space; erase_if collects internally.
    const std::uint32_t band = round % 4;
    store.erase_if([&](std::uint64_t k) {
      const auto node = static_cast<std::uint32_t>(k >> 33);
      return node % 4 == band;
    });
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad_records.load(), 0u);
}

// ---- Solver-level round stress -------------------------------------------

struct Workload {
  pag::Pag pag;
  std::vector<pag::NodeId> queries;
};

Workload medium_workload(std::uint64_t seed = 77) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 14;
  cfg.library_methods = 14;
  cfg.containers = 3;
  cfg.container_use_blocks = 12;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<pag::NodeId> queries;
  for (const pag::NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

TEST(ConcurrencyStress, ConcurrentQueriesWithBetweenBatchEraseIf) {
  // The tentpole's target schedule: worker solvers hammer lock-free lookups
  // and batched publication inside a batch; between batches (quiescent, per
  // the invalidation contract) the main thread erase_if's part of the store.
  const Workload w = medium_workload();
  cfl::ContextTable contexts;
  cfl::JmpStore store;

  cfl::SolverOptions opts;
  opts.budget = 100'000;
  opts.data_sharing = true;
  opts.tau_finished = 10;
  opts.tau_unfinished = 100;
  ASSERT_TRUE(opts.batched_publication);

  constexpr int kWorkers = 4;
  std::vector<std::unique_ptr<cfl::Solver>> solvers;
  for (int t = 0; t < kWorkers; ++t)
    solvers.push_back(
        std::make_unique<cfl::Solver>(w.pag, contexts, &store, opts));

  for (int round = 0; round < 6; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kWorkers; ++t) {
      threads.emplace_back([&, t] {
        cfl::QueryResult qr;
        for (const pag::NodeId q : w.queries) solvers[t]->points_to(q, qr);
      });
    }
    for (auto& th : threads) th.join();
    // Quiescent point: no solver mid-query. Evict a rotating slice.
    const std::uint32_t band = round % 3;
    store.erase_if([&](std::uint64_t k) {
      return static_cast<std::uint32_t>(k >> 33) % 3 == band;
    });
  }

  // Sanity: sharing actually happened and the store survived the churn with
  // its O(1) size counter still agreeing with an actual walk.
  support::QueryCounters totals;
  for (const auto& s : solvers) totals.merge(s->counters());
  EXPECT_GT(totals.jmp_lookups, 0u);
  EXPECT_GT(totals.jmps_added_finished + totals.jmps_added_unfinished, 0u);
  std::size_t walked = 0;
  store.for_each_entry([&](std::uint64_t, const cfl::JmpStore::Lookup&) {
    ++walked;
  });
  EXPECT_EQ(store.entry_count(), walked);
}

// ---- ContextTable thread-local interning cache ---------------------------

TEST(ContextTableTlCache, RepeatPushesAndConcurrentInterning) {
  cfl::ContextTable table;
  const cfl::CtxId c1 = table.push(cfl::ContextTable::empty(), pag::CallSiteId(5));
  ASSERT_TRUE(c1.valid());
  // Cache hit must return the identical id, not re-intern.
  EXPECT_EQ(table.push(cfl::ContextTable::empty(), pag::CallSiteId(5)), c1);
  EXPECT_EQ(table.size(), 2u);  // empty + one interned

  // Concurrent same-chain pushes from many threads agree on one id per
  // (parent, site) — TL caches must not mint duplicates.
  constexpr int kThreads = 8;
  std::vector<cfl::CtxId> leaf(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cfl::CtxId c = cfl::ContextTable::empty();
      for (std::uint32_t site = 1; site <= 40; ++site) {
        c = table.push(c, pag::CallSiteId(site));
        c = table.push(c.valid() ? table.pop(c) : c, pag::CallSiteId(site));
      }
      leaf[t] = c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(leaf[t], leaf[0]);
  EXPECT_EQ(table.size(), 2u + 40u);  // empty, site5 chain head, 40-chain
}

TEST(ContextTableTlCache, TablesDoNotCrossTalkThroughTheCache) {
  // Same (parent, site) pushed into two tables from one thread: generation
  // checks must keep the caches apart, or table B would return A's id
  // without ever publishing an entry of its own.
  cfl::ContextTable a, b;
  const cfl::CtxId ca = a.push(cfl::ContextTable::empty(), pag::CallSiteId(9));
  const cfl::CtxId cb = b.push(cfl::ContextTable::empty(), pag::CallSiteId(9));
  ASSERT_TRUE(ca.valid());
  ASSERT_TRUE(cb.valid());
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.top(ca).value(), 9u);
  EXPECT_EQ(b.top(cb).value(), 9u);
  // Alternate between tables: each flip flushes and repopulates the TL
  // cache, and ids must stay consistent throughout.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.push(cfl::ContextTable::empty(), pag::CallSiteId(9)), ca);
    EXPECT_EQ(b.push(cfl::ContextTable::empty(), pag::CallSiteId(9)), cb);
  }
}

// ---- Batched-publication property tests ----------------------------------

using OutcomeKey = std::pair<cfl::QueryStatus, std::vector<pag::NodeId>>;

std::map<std::uint32_t, OutcomeKey> outcomes_by_var(const cfl::EngineResult& r) {
  std::map<std::uint32_t, OutcomeKey> m;
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    std::vector<pag::NodeId> objs = r.objects[i];
    std::sort(objs.begin(), objs.end());
    m[r.outcomes[i].var.value()] = {r.outcomes[i].status, std::move(objs)};
  }
  return m;
}

TEST(BatchedPublication, AllFourModesMatchImmediatePublication) {
  // Deferring store inserts to query end must not change any query outcome.
  // With charge_jmp_costs=false (the default) a worker that recomputes an RN
  // body instead of consuming its own not-yet-flushed shortcut charges the
  // same budget, so sequential outcomes are bit-identical and parallel modes
  // keep the same answer set they must produce under any publication timing.
  const Workload w = medium_workload();
  ASSERT_GE(w.queries.size(), 8u);

  auto run = [&](cfl::Mode mode, unsigned threads, bool batched) {
    cfl::EngineOptions o;
    o.mode = mode;
    o.threads = threads;
    o.collect_objects = true;
    o.solver.budget = 200'000;
    o.solver.tau_finished = 10;
    o.solver.tau_unfinished = 100;
    o.solver.batched_publication = batched;
    cfl::Engine engine(w.pag, o);
    return outcomes_by_var(engine.run(w.queries));
  };

  const struct {
    cfl::Mode mode;
    unsigned threads;
    const char* name;
  } configs[] = {
      {cfl::Mode::kSequential, 1, "SeqCFL"},
      {cfl::Mode::kNaive, 4, "ParCFL_naive"},
      {cfl::Mode::kDataSharing, 4, "ParCFL_D"},
      {cfl::Mode::kDataSharingScheduling, 4, "ParCFL_DQ"},
  };
  const auto baseline = run(cfl::Mode::kSequential, 1, /*batched=*/false);
  for (const auto& c : configs) {
    const auto got = run(c.mode, c.threads, /*batched=*/true);
    ASSERT_EQ(got.size(), baseline.size()) << c.name;
    for (const auto& [var, expected] : baseline) {
      const auto it = got.find(var);
      ASSERT_NE(it, got.end()) << c.name << " lost var " << var;
      EXPECT_EQ(it->second.first, expected.first)
          << c.name << " (batched) status differs for var " << var;
      EXPECT_EQ(it->second.second, expected.second)
          << c.name << " (batched) object set differs for var " << var;
    }
  }
}

TEST(BatchedPublication, FlushPreservesFirstWins) {
  // Warm the store with one solver, snapshot every entry, then run a second
  // solver over the same queries with batched publication. Its flushes race
  // no one here, but they do hit fully-populated keys — every one must lose
  // first-wins, leaving each snapshot entry bit-identical.
  const Workload w = medium_workload();
  cfl::ContextTable contexts;
  cfl::JmpStore store;
  cfl::SolverOptions opts;
  opts.budget = 100'000;
  opts.data_sharing = true;
  opts.tau_finished = 10;
  opts.tau_unfinished = 100;

  {
    cfl::Solver warm(w.pag, contexts, &store, opts);
    cfl::QueryResult qr;
    for (const pag::NodeId q : w.queries) warm.points_to(q, qr);
  }
  ASSERT_GT(store.entry_count(), 0u);

  struct Snap {
    bool has_finished = false;
    std::uint32_t cost = 0;
    std::size_t targets = 0;
    std::uint32_t unfinished_s = 0;
  };
  std::map<std::uint64_t, Snap> snapshot;
  store.for_each_entry([&](std::uint64_t key, const cfl::JmpStore::Lookup& lk) {
    Snap s;
    if (lk.finished != nullptr) {
      s.has_finished = true;
      s.cost = lk.finished->cost;
      s.targets = lk.finished->targets.size();
    }
    s.unfinished_s = lk.unfinished_s;
    snapshot[key] = s;
  });

  cfl::Solver second(w.pag, contexts, &store, opts);
  cfl::QueryResult qr;
  for (const pag::NodeId q : w.queries) second.points_to(q, qr);

  for (const auto& [key, before] : snapshot) {
    cfl::JmpStore::Lookup lk;
    ASSERT_TRUE(store.lookup(key, lk)) << "entry vanished";
    if (before.has_finished) {
      ASSERT_NE(lk.finished, nullptr);
      EXPECT_EQ(lk.finished->cost, before.cost) << "finished entry overwritten";
      EXPECT_EQ(lk.finished->targets.size(), before.targets);
    }
    if (before.unfinished_s != 0) {
      EXPECT_EQ(lk.unfinished_s, before.unfinished_s)
          << "unfinished entry overwritten";
    }
  }
}

}  // namespace
}  // namespace parcfl
