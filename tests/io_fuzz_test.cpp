// PAG text-format fuzzing: random graphs round-trip bit-exactly; mutated
// inputs never crash the parser (they parse or fail with a message).
// Also fuzzes the service wire protocol (mutated and truncated request lines
// must yield error replies, never crashes or wrong-typed requests) and the
// sharing-state persistence format (mutated state files are either rejected
// with a message or loaded into tables the solver can still run on).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cfl/context.hpp"
#include "cfl/jmp_store.hpp"
#include "cfl/persist.hpp"
#include "cfl/solver.hpp"
#include "pag/pag_io.hpp"
#include "pag/partition.hpp"
#include "pag/reduce.hpp"
#include "pag/validate.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace parcfl::pag {
namespace {

class IoFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzzTest, RoundTripIsExact) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam();
  cfg.layers = 2 + GetParam() % 4;
  cfg.vars_per_layer = 2 + GetParam() % 5;
  cfg.objects = 1 + GetParam() % 6;
  cfg.assign_edges = GetParam() % 12;
  cfg.param_ret_edges = GetParam() % 10;
  cfg.heap_edge_pairs = GetParam() % 6;
  const auto pag = test::random_layered_pag(cfg);

  const std::string text = write_pag_string(pag);
  std::string error;
  const auto parsed = read_pag_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(write_pag_string(*parsed), text);

  // Structure survives, not just the text.
  ASSERT_EQ(parsed->node_count(), pag.node_count());
  ASSERT_EQ(parsed->edge_count(), pag.edge_count());
  for (std::uint32_t n = 0; n < pag.node_count(); ++n) {
    EXPECT_EQ(parsed->kind(NodeId(n)), pag.kind(NodeId(n)));
    EXPECT_EQ(parsed->node(NodeId(n)).method, pag.node(NodeId(n)).method);
    EXPECT_EQ(parsed->node(NodeId(n)).is_application,
              pag.node(NodeId(n)).is_application);
  }
  for (unsigned k = 0; k < kEdgeKindCount; ++k)
    EXPECT_EQ(parsed->edge_count_of_kind(static_cast<EdgeKind>(k)),
              pag.edge_count_of_kind(static_cast<EdgeKind>(k)));
}

TEST_P(IoFuzzTest, MutatedInputNeverCrashes) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam();
  const auto pag = test::random_layered_pag(cfg);
  std::string text = write_pag_string(pag);

  support::Rng rng(GetParam() * 977 + 13);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = text;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(' ' + rng.below(95));
          break;
        case 1:  // delete a span
          mutated.erase(pos, 1 + rng.below(5));
          break;
        case 2:  // duplicate a span
          mutated.insert(pos, mutated.substr(pos, 1 + rng.below(5)));
          break;
      }
    }
    std::string error;
    const auto parsed = read_pag_string(mutated, &error);
    // Either outcome is fine; a parse must yield a structurally sane graph.
    if (parsed.has_value()) {
      EXPECT_LE(parsed->edge_count(), 100000u);
      (void)validate(*parsed);  // must not crash either
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

// The reducer sits on the load path right behind the parser (Session,
// pag_tool), so it must be total over anything the parser lets through —
// including the structurally weird graphs mutation produces. Invariants on
// every surviving parse: both variants run without crashing, the edge-only
// variant keeps ids and removes edges monotonically (subset, stats add up,
// idempotent), and the compact variant's remap is a consistent partial map.
TEST_P(IoFuzzTest, ReducerIsTotalOnMutatedInputs) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 400;
  const auto pag = test::random_layered_pag(cfg);
  const std::string text = write_pag_string(pag);

  support::Rng rng(GetParam() * 1409 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = text;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(' ' + rng.below(95));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.below(5));
          break;
        case 2:
          mutated.insert(pos, mutated.substr(pos, 1 + rng.below(5)));
          break;
      }
    }
    const auto parsed = read_pag_string(mutated, nullptr);
    if (!parsed.has_value()) continue;

    ReduceStats stats;
    const Pag reduced = reduce_unmatched_parens(*parsed, &stats);
    EXPECT_EQ(reduced.node_count(), parsed->node_count());
    EXPECT_EQ(stats.edges_before, parsed->edge_count());
    EXPECT_EQ(reduced.edge_count(), stats.edges_after());
    std::uint32_t by_kind = 0;
    for (unsigned k = 0; k < kEdgeKindCount; ++k) {
      by_kind += stats.removed_by_kind[k];
      EXPECT_LE(reduced.edge_count_of_kind(static_cast<EdgeKind>(k)),
                parsed->edge_count_of_kind(static_cast<EdgeKind>(k)));
    }
    EXPECT_EQ(by_kind, stats.edges_removed);
    (void)validate(reduced);  // must not crash

    // Idempotent: a second pass finds nothing left to remove.
    ReduceStats again;
    const Pag twice = reduce_unmatched_parens(reduced, &again);
    EXPECT_EQ(again.edges_removed, 0u);
    EXPECT_EQ(twice.edge_count(), reduced.edge_count());

    const ReduceResult compact = reduce_and_compact(*parsed);
    EXPECT_EQ(compact.pag.node_count() + compact.stats.nodes_dropped,
              parsed->node_count());
    ASSERT_EQ(compact.remap.size(), parsed->node_count());
    std::vector<char> hit(compact.pag.node_count(), 0);
    for (std::uint32_t n = 0; n < compact.remap.size(); ++n) {
      const NodeId to = compact.remap[n];
      if (!to.valid()) continue;
      ASSERT_LT(to.value(), compact.pag.node_count());
      EXPECT_FALSE(hit[to.value()]) << "remap not injective at " << n;
      hit[to.value()] = 1;
      EXPECT_EQ(compact.pag.kind(to), parsed->kind(NodeId(n)));
    }
    // Surjective onto the compacted id space: every kept id has a preimage.
    for (std::uint32_t n = 0; n < compact.pag.node_count(); ++n)
      EXPECT_TRUE(hit[n]) << "compacted id " << n << " unmapped";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzTest, ::testing::Range<std::uint64_t>(1, 21));

// ---- service wire protocol --------------------------------------------------

class ServiceFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

/// Valid request lines to mutate (node bound passed to the parser is 50).
const char* const kSeedLines[] = {
    "query 17",
    "query v17 budget 5 deadline 9",
    "alias 3 44 budget 100",
    "taint 3 44",
    "taint v3 v44 budget 9",
    "depends 3 44 deadline 7",
    "@acme taint 3 44",
    "@acme depends 3 44 budget 9",
    "stats",
    "metrics",
    "slowlog",
    "slowlog 8",
    "save /tmp/state.bin",
    "load /tmp/state.bin",
    "ping",
    "quit",
    "open acme /tmp/graph.pag",
    "close acme",
    "@acme query 17",
    "@acme alias 3 44 budget 9",
    "@t-1_x.Y save /tmp/state.bin",
    "@acme @other query 3",
    "@acme index",
    "index",
    "part",
    "part 1",
    "cont b 17 -",
    "cont f 17 3.4 budget 9",
    "cfact b 17 - 1 3:-",
    "cfact f 17 2.9 2 3:- 4:1.2",
    "creset",
};

TEST_P(ServiceFuzzTest, MutatedRequestLinesParseOrFailWithMessage) {
  support::Rng rng(GetParam() * 1299709 + 7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string line = kSeedLines[rng.below(std::size(kSeedLines))];
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      if (line.empty()) break;
      const std::size_t pos = rng.below(line.size());
      switch (rng.below(4)) {
        case 0:  // flip a character
          line[pos] = static_cast<char>(' ' + rng.below(95));
          break;
        case 1:  // truncate
          line.resize(pos);
          break;
        case 2:  // delete a span
          line.erase(pos, 1 + rng.below(5));
          break;
        case 3:  // duplicate a span
          line.insert(pos, line.substr(pos, 1 + rng.below(5)));
          break;
      }
    }
    service::Request request;
    std::string error;
    const bool ok = service::parse_request(line, /*node_count=*/50, request,
                                           error);
    if (ok) {
      // A parse must yield a well-typed request: node ids in bounds. A
      // tenant-prefixed query defers the node check to dispatch (the graph
      // may be evicted), so only the bare form promises the bound here.
      if (request.tenant.empty()) {
        if (request.verb == service::Verb::kQuery ||
            request.verb == service::Verb::kAlias ||
            request.verb == service::Verb::kTaint ||
            request.verb == service::Verb::kDepends ||
            request.verb == service::Verb::kCont ||
            request.verb == service::Verb::kCFact) {
          EXPECT_LT(request.a.value(), 50u) << line;
        }
        if (request.verb == service::Verb::kAlias ||
            request.verb == service::Verb::kTaint ||
            request.verb == service::Verb::kDepends) {
          EXPECT_LT(request.b.value(), 50u) << line;
        }
        if (request.verb == service::Verb::kCont ||
            request.verb == service::Verb::kCFact) {
          // Accepted chains are always internable: depth-capped, and every
          // tuple node in bounds.
          EXPECT_LE(request.chain.size(), service::kMaxChainSites) << line;
          EXPECT_LE(request.tuples.size(), service::kMaxContTuples) << line;
          for (const service::WireTuple& t : request.tuples) {
            EXPECT_LT(t.node.value(), 50u) << line;
            EXPECT_LE(t.chain.size(), service::kMaxChainSites) << line;
          }
        }
      } else {
        // Every route that sets a tenant (the @ prefix, open, close) must
        // have validated the name — spill-file stems come from it.
        EXPECT_TRUE(service::valid_tenant_name(request.tenant)) << line;
      }
    } else {
      EXPECT_FALSE(error.empty()) << line;
    }
  }
}

TEST(ServiceFuzz, HostileObservabilityArgumentsAreTotal) {
  service::Request r;
  std::string error;
  // metrics is arity-0; anything after it is a parse error, not a crash.
  EXPECT_FALSE(service::parse_request("metrics 7", 50, r, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(service::parse_request("metrics metrics", 50, r, error));
  // slowlog takes at most one numeric count; hostile counts must parse to a
  // bounded request or fail — never feed a negative/overflow into the log.
  EXPECT_FALSE(service::parse_request("slowlog -1", 50, r, error));
  EXPECT_FALSE(service::parse_request("slowlog 1 2", 50, r, error));
  EXPECT_FALSE(service::parse_request("slowlog 999999999999999999999999", 50,
                                      r, error));
  ASSERT_TRUE(service::parse_request("slowlog 18446744073709551615", 50, r,
                                     error))
      << error;
  EXPECT_EQ(r.verb, service::Verb::kSlowLog);
  EXPECT_EQ(r.count, 18446744073709551615ull);
}

// Hostile continuation-protocol frames (ISSUE 9 satellite): cont/cfact/part
// lines are spoken router-to-worker across trust boundaries, so truncations,
// overflowing counts, over-deep chains, and malformed tuples must all die in
// the parser with a message — the worker session must never see them.
TEST(ServiceFuzz, HostileWorkerFramesAreTotal) {
  service::Request r;
  std::string error;

  const char* const hostile[] = {
      "cont",                        // no direction
      "cont b",                      // no node
      "cont b 17",                   // no chain
      "cont x 17 -",                 // bad direction
      "cont b 99 -",                 // node out of range (bound is 50)
      "cont b 17 1.2.",              // trailing dot
      "cont b 17 .1",                // leading dot
      "cont b 17 1..2",              // empty site
      "cont b 17 1.x",               // non-numeric site
      "cont b 17 -1",                // negative site
      "cont b 17 - budget",          // option without value
      "cont b 17 - budget x",        // non-numeric budget
      "cont b 17 - frobnicate 3",    // unknown option
      "cfact b 17 -",                // no count
      "cfact b 17 - x",              // non-numeric count
      "cfact b 17 - 2 3:-",          // count overshoots tuples
      "cfact b 17 - 1 3:- 4:-",      // count undershoots tuples
      "cfact b 17 - 1 nocolon",      // tuple without colon
      "cfact b 17 - 1 99:-",         // tuple node out of range
      "cfact b 17 - 1 3:1.2.",       // tuple chain trailing dot
      "cfact b 17 - 513",            // k beyond kMaxContTuples
      "cfact b 17 - 18446744073709551615",  // k overflow
      "part x",                      // non-numeric partition id
      "part 99999999999",            // partition id overflows u32
      "part 1 2",                    // too many arguments
      "creset 1",                    // creset is arity-0
  };
  for (const char* line : hostile) {
    error.clear();
    EXPECT_FALSE(service::parse_request(line, 50, r, error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }

  // A chain one site past the depth cap is rejected; at the cap it parses.
  std::string deep = "cont b 17 0";
  for (std::size_t i = 1; i < service::kMaxChainSites; ++i) deep += ".0";
  ASSERT_TRUE(service::parse_request(deep, 50, r, error)) << error;
  EXPECT_EQ(r.chain.size(), service::kMaxChainSites);
  EXPECT_FALSE(service::parse_request(deep + ".0", 50, r, error));

  // The budget option rides cont like it rides query.
  ASSERT_TRUE(service::parse_request("cont f 3 1.2 budget 77", 50, r, error))
      << error;
  EXPECT_EQ(r.verb, service::Verb::kCont);
  EXPECT_EQ(r.dir, 1);
  EXPECT_EQ(r.budget, 77u);
  ASSERT_EQ(r.chain.size(), 2u);
  EXPECT_EQ(r.chain[0], 1u);
  EXPECT_EQ(r.chain[1], 2u);

  // Worker verbs refuse the tenant prefix: continuation state is bound to
  // the connection's default session, not a routable tenant.
  EXPECT_FALSE(service::parse_request("@acme cont b 17 -", 50, r, error));
  EXPECT_FALSE(service::parse_request("@acme part", 50, r, error));
  EXPECT_FALSE(service::parse_request("@acme creset", 50, r, error));
}

// Hostile taint/depends frames (DESIGN.md §15): the flow verbs share the
// two-node shape with alias, so truncations, non-numeric ids, out-of-range
// nodes, and malformed option tails must all die in the parser with a
// message; well-formed frames parse with both ids bound (tenant-prefixed
// forms defer the bound to dispatch like every routed verb).
TEST(ServiceFuzz, HostileFlowVerbFramesAreTotal) {
  service::Request r;
  std::string error;

  for (const char* verb : {"taint", "depends"}) {
    const std::string v = verb;
    for (const std::string& line : {
             v,                        // no nodes
             v + " 3",                 // one node (truncated frame)
             v + " 3 4 5",             // three nodes
             v + " x 4",               // non-numeric source
             v + " 3 x",               // non-numeric sink
             v + " 99 3",              // source out of range (bound is 50)
             v + " 3 99",              // sink out of range
             v + " -3 4",              // negative id
             v + " 3 4 budget",        // option without value
             v + " 3 4 budget x",      // non-numeric budget
             v + " 3 4 frobnicate 1",  // unknown option
             v + " v 4",               // bare variable prefix
             "@acme " + v + " 3",      // truncated under a tenant prefix
             "@ " + v + " 3 4",        // empty tenant name
         }) {
      error.clear();
      EXPECT_FALSE(service::parse_request(line, 50, r, error)) << line;
      EXPECT_FALSE(error.empty()) << line;
    }
  }

  // Well-formed frames parse with verb, ids, and options intact.
  ASSERT_TRUE(service::parse_request("taint v3 v44 budget 9", 50, r, error))
      << error;
  EXPECT_EQ(r.verb, service::Verb::kTaint);
  EXPECT_EQ(r.a.value(), 3u);
  EXPECT_EQ(r.b.value(), 44u);
  EXPECT_EQ(r.budget, 9u);
  ASSERT_TRUE(service::parse_request("depends 3 44", 50, r, error)) << error;
  EXPECT_EQ(r.verb, service::Verb::kDepends);
  // Tenant-prefixed: ids the default graph would reject still parse (the
  // target graph's bound is checked at dispatch).
  ASSERT_TRUE(
      service::parse_request("@acme taint 4000000000 2", 50, r, error))
      << error;
  EXPECT_EQ(r.tenant, "acme");
  EXPECT_EQ(r.a.value(), 4000000000u);
}

// Flow verbs against a live service: non-variable roots and sinks answer an
// error (the grammar's roots are variables), and a partitioned worker
// refuses the verbs outright — never a crash, and the session keeps serving.
TEST(ServiceFuzz, FlowVerbsAgainstServiceAreTotal) {
  test::RandomPagConfig cfg;
  cfg.seed = 9;
  const auto pag = test::random_layered_pag(cfg);
  const auto vars = test::all_variables(pag);
  const auto objects = test::all_objects(pag);
  ASSERT_GE(vars.size(), 2u);
  ASSERT_FALSE(objects.empty());

  service::ServiceOptions options;
  options.session.engine.threads = 2;
  options.session.prefilter = false;
  service::QueryService svc(pag, options);

  auto flow = [&](service::Verb verb, NodeId a, NodeId b) {
    service::Request q;
    q.verb = verb;
    q.a = a;
    q.b = b;
    return svc.call(std::move(q));
  };

  for (const service::Verb verb :
       {service::Verb::kTaint, service::Verb::kDepends}) {
    EXPECT_EQ(flow(verb, objects[0], vars[0]).status,
              service::Reply::Status::kError);
    EXPECT_EQ(flow(verb, vars[0], objects[0]).status,
              service::Reply::Status::kError);
    EXPECT_EQ(flow(verb, NodeId(pag.node_count() + 7), vars[0]).status,
              service::Reply::Status::kError);
    EXPECT_EQ(flow(verb, vars[0], vars[1]).status,
              service::Reply::Status::kOk);
  }

  // Partitioned worker: the flow verbs are rejected at dispatch (the
  // sub-PAG cannot answer them), and pointer queries still work after.
  PartitionOptions po;
  po.parts = 2;
  const auto map =
      std::make_shared<const PartitionMap>(partition_pag(pag, po));
  service::ServiceOptions wo;
  wo.session.engine.threads = 2;
  wo.session.partition = map;
  wo.session.partition_id = 0;
  service::QueryService worker(make_sub_pag(pag, *map, 0), wo);
  service::Request t;
  t.verb = service::Verb::kTaint;
  t.a = vars[0];
  t.b = vars[1];
  EXPECT_EQ(worker.call(std::move(t)).status, service::Reply::Status::kError);
  service::Request probe;
  probe.verb = service::Verb::kQuery;
  probe.a = vars[0];
  EXPECT_EQ(worker.call(std::move(probe)).status,
            service::Reply::Status::kOk);
}

// Hostile tenant names and fleet-verb shapes (ISSUE 7 satellite): names
// become spill-file stems, so traversal characters, control bytes, and the
// dot-dirs must be rejected at the parser, and the @ prefix must only attach
// to the verbs that can route to a tenant.
TEST(ServiceFuzz, HostileTenantNamesAndFleetVerbsAreTotal) {
  service::Request r;
  std::string error;

  // Path traversal, separators, spaces, control bytes, empty, oversized.
  for (const char* open : {
           "open .. /tmp/g.pag",
           "open . /tmp/g.pag",
           "open ../../etc/passwd /tmp/g.pag",
           "open a/b /tmp/g.pag",
           "open a\tb /tmp/g.pag",
           "open \x01evil /tmp/g.pag",
           "open  /tmp/g.pag",      // name missing (double space collapses)
           "open acme",             // path missing
           "open acme /g.pag junk"  // trailing garbage
       }) {
    EXPECT_FALSE(service::parse_request(open, 50, r, error)) << open;
    EXPECT_FALSE(error.empty()) << open;
  }
  const std::string oversized(service::kMaxTenantName + 1, 'a');
  EXPECT_FALSE(
      service::parse_request("open " + oversized + " /tmp/g.pag", 50, r,
                             error));
  EXPECT_FALSE(service::parse_request("close " + oversized, 50, r, error));
  EXPECT_FALSE(service::parse_request("@" + oversized + " query 1", 50, r,
                                      error));
  // Exactly at the cap is legal.
  const std::string max_name(service::kMaxTenantName, 'a');
  ASSERT_TRUE(
      service::parse_request("close " + max_name, 50, r, error))
      << error;
  EXPECT_EQ(r.tenant, max_name);

  // The @ prefix: needs a name, needs a verb, and only routes data-plane
  // verbs — control-plane and fleet verbs refuse it.
  EXPECT_FALSE(service::parse_request("@ query 1", 50, r, error));
  EXPECT_FALSE(service::parse_request("@..", 50, r, error));
  EXPECT_FALSE(service::parse_request("@acme", 50, r, error));
  EXPECT_FALSE(service::parse_request("@a cme query 1", 50, r, error));
  EXPECT_FALSE(service::parse_request("@acme stats", 50, r, error));
  EXPECT_FALSE(service::parse_request("@acme metrics", 50, r, error));
  EXPECT_FALSE(service::parse_request("@acme open b /tmp/g.pag", 50, r,
                                      error));
  EXPECT_FALSE(service::parse_request("@acme close b", 50, r, error));
  EXPECT_FALSE(service::parse_request("@acme quit", 50, r, error));

  // Well-formed tenant requests parse, with node checks deferred: an id the
  // default graph would reject rides through to dispatch-time validation.
  ASSERT_TRUE(service::parse_request("@acme query 4000000000", 50, r, error))
      << error;
  EXPECT_EQ(r.tenant, "acme");
  EXPECT_EQ(r.a.value(), 4000000000u);
  ASSERT_TRUE(service::parse_request("open t.0-b_c /tmp/g.pag", 50, r, error))
      << error;
  EXPECT_EQ(r.tenant, "t.0-b_c");
  EXPECT_EQ(r.path, "/tmp/g.pag");
}

// Malformed @-prefix remainders (PR 8 satellite): a prefix followed by only
// whitespace, or by a second @-token, must parse to a protocol error — the
// second prefix in particular must never silently reroute or be read as a
// verb.
TEST(ServiceFuzz, MalformedTenantPrefixRemaindersAreTotal) {
  service::Request r;
  std::string error;
  for (const char* line : {
           "@acme ",          // whitespace-only remainder
           "@acme \t \t  ",   //
           "@acme @acme query 1",  // duplicated prefix, same name
           "@acme @other query 1", // duplicated prefix, different name
           "@acme @ query 1",      //
           "@a @b @c query 1",     //
           "@acme @query 1",       // verb position holds another prefix
       }) {
    error.clear();
    EXPECT_FALSE(service::parse_request(line, 50, r, error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
  EXPECT_FALSE(service::parse_request("@acme @other query 1", 50, r, error));
  EXPECT_EQ(error, "duplicate tenant prefix");

  // `index` rides the prefix like any data-plane verb, and is arity-0.
  ASSERT_TRUE(service::parse_request("@acme index", 50, r, error)) << error;
  EXPECT_EQ(r.verb, service::Verb::kIndex);
  EXPECT_EQ(r.tenant, "acme");
  ASSERT_TRUE(service::parse_request("index", 50, r, error)) << error;
  EXPECT_EQ(r.verb, service::Verb::kIndex);
  EXPECT_TRUE(r.tenant.empty());
  EXPECT_FALSE(service::parse_request("index 3", 50, r, error));
  EXPECT_FALSE(service::parse_request("@acme index 3", 50, r, error));
}

// Fleet verbs against a live service: open-nonexistent-path answers an
// error (not a crash, not a registration), close-unknown errors, and a
// hostile name that sneaks past the wire (empty = the pinned default
// tenant's manager name) stays unaddressable.
TEST(ServiceFuzz, FleetVerbsAgainstServiceAreTotal) {
  test::RandomPagConfig cfg;
  cfg.seed = 11;
  auto pag = test::random_layered_pag(cfg);
  service::ServiceOptions options;
  options.session.engine.threads = 2;
  options.session.prefilter = false;
  service::QueryService svc(std::move(pag), options);

  service::Request open;
  open.verb = service::Verb::kOpen;
  open.tenant = "ghost";
  open.path = "/nonexistent/graph.pag";
  EXPECT_EQ(svc.call(std::move(open)).status,
            service::Reply::Status::kError);
  EXPECT_FALSE(svc.manager().known("ghost"));

  service::Request close;
  close.verb = service::Verb::kClose;
  close.tenant = "never-opened";
  EXPECT_EQ(svc.call(std::move(close)).status,
            service::Reply::Status::kError);

  // The default tenant is adopted under "" — pinned, not closable even if a
  // crafted Request bypasses the parser's name validation.
  service::Request close_default;
  close_default.verb = service::Verb::kClose;
  EXPECT_EQ(svc.call(std::move(close_default)).status,
            service::Reply::Status::kError);
}

// A u64-max slowlog count is a request for "everything", not an allocation
// hint: the service must answer from what it retains, instantly.
TEST(ServiceFuzz, HugeSlowlogCountDoesNotAllocate) {
  test::RandomPagConfig cfg;
  cfg.seed = 5;
  const auto pag = test::random_layered_pag(cfg);
  service::ServiceOptions options;
  options.session.engine.threads = 2;
  options.slow_query_ms = 1e-6;
  options.slow_log_capacity = 4;
  service::QueryService svc(pag, options);
  const auto vars = test::all_variables(pag);
  for (std::size_t i = 0; i < vars.size() && i < 8; ++i) {
    service::Request q;
    q.verb = service::Verb::kQuery;
    q.a = vars[i];
    ASSERT_EQ(svc.call(q).status, service::Reply::Status::kOk);
  }
  std::istringstream in("slowlog 18446744073709551615\nmetrics\nquit\n");
  std::ostringstream out;
  EXPECT_EQ(service::serve_stream(svc, in, out), 3u);
  EXPECT_EQ(out.str().rfind("ok slowlog ", 0), 0u) << out.str();
}

/// Consume one reply frame starting at `lines[i]`: a single line, except for
/// `ok metrics <n>` / `ok slowlog <n>` / `ok cont <status> <charge> <n>`
/// headers which announce n payload lines. Returns the index past the frame,
/// or npos on a malformed frame.
std::size_t consume_reply_frame(const std::vector<std::string>& lines,
                                std::size_t i) {
  const std::string& head = lines[i];
  const bool ok = head.rfind("ok", 0) == 0 || head.rfind("shed", 0) == 0;
  const bool err = head.rfind("err ", 0) == 0 && head.size() > 4;
  if (!ok && !err) return std::string::npos;
  std::size_t payload = 0;
  for (const char* prefix : {"ok metrics ", "ok slowlog "}) {
    if (head.rfind(prefix, 0) == 0) {
      char* end = nullptr;
      payload = std::strtoull(head.c_str() + std::strlen(prefix), &end, 10);
      if (*end != '\0') return std::string::npos;
    }
  }
  if (head.rfind("ok cont ", 0) == 0) {
    std::istringstream hs(head.substr(std::strlen("ok cont ")));
    std::string status;
    std::uint64_t charged = 0;
    if (!(hs >> status >> charged >> payload)) return std::string::npos;
    std::string extra;
    if (hs >> extra) return std::string::npos;
  }
  if (i + 1 + payload > lines.size()) return std::string::npos;  // truncated
  return i + 1 + payload;
}

TEST_P(ServiceFuzzTest, GarbageStreamsGetErrorRepliesNeverCrashes) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam();
  const auto pag = test::random_layered_pag(cfg);
  const std::uint32_t nodes = pag.node_count();

  // Serve as a partition worker so the stream exercises the continuation
  // verbs for real: cont answers counted multi-line frames, cfact accumulates
  // per-connection facts, and the garbage in between must corrupt neither.
  PartitionOptions po;
  po.parts = 2;
  const auto map =
      std::make_shared<const PartitionMap>(partition_pag(pag, po));
  service::ServiceOptions options;
  options.session.engine.mode = cfl::Mode::kDataSharing;
  options.session.engine.threads = 2;
  options.session.partition = map;
  options.session.partition_id = 0;
  options.max_linger = std::chrono::microseconds(50);
  service::QueryService svc(make_sub_pag(pag, *map, 0), options);

  support::Rng rng(GetParam() * 6700417 + 3);
  std::ostringstream request_text;
  int expected = 0;
  for (int i = 0; i < 60; ++i) {
    ++expected;
    switch (rng.below(10)) {
      case 0:  // bad node id (out of range, or not a number)
        request_text << "query " << (nodes + rng.below(1000)) << "\n";
        break;
      case 1:  // garbage verb
        request_text << "frobnicate " << rng.below(100) << "\n";
        break;
      case 2: {  // binary noise
        std::string noise;
        for (std::size_t k = 0; k < 1 + rng.below(40); ++k)
          noise += static_cast<char>(1 + rng.below(254));
        for (char& c : noise)
          if (c == '\n') c = ' ';
        request_text << noise << "\n";
        break;
      }
      case 3:  // oversized line (rejected before tokenisation)
        request_text << std::string(service::kMaxRequestLine + 1, 'a') << "\n";
        break;
      case 4:  // valid query, to keep the session actually analysing
        request_text << "query " << rng.below(nodes) << "\n";
        break;
      case 5:  // valid-looking but truncated option pair
        request_text << "query " << rng.below(nodes) << " budget\n";
        break;
      case 6:  // metrics scrape mid-abuse (counted multi-line reply)
        request_text << "metrics\n";
        break;
      case 7:  // slowlog, sometimes with a hostile count
        request_text << "slowlog " << (rng.below(2) == 0 ? rng.below(10)
                                                         : rng.next_u64())
                     << "\n";
        break;
      case 8:  // continuation-protocol frames, valid and hostile
        switch (rng.below(6)) {
          case 0:
            request_text << "part\n";
            break;
          case 1:  // wrong partition id — refused, never rebinds
            request_text << "part " << 1 + rng.below(4) << "\n";
            break;
          case 2:
            request_text << "cont b " << rng.below(nodes) << " -\n";
            break;
          case 3:  // forward task under a random context chain and budget
            request_text << "cont f " << rng.below(nodes) << " "
                         << rng.below(9) << "." << rng.below(9) << " budget "
                         << 1 + rng.below(1000) << "\n";
            break;
          case 4:
            request_text << "cfact b " << rng.below(nodes) << " - 1 "
                         << rng.below(nodes) << ":-\n";
            break;
          case 5:
            request_text << "creset\n";
            break;
        }
        break;
      case 9:  // flow verbs — refused on a partitioned worker, never fatal
        request_text << (rng.below(2) == 0 ? "taint " : "depends ")
                     << rng.below(nodes + 5) << " " << rng.below(nodes + 5)
                     << "\n";
        break;
    }
  }
  std::istringstream in(request_text.str());
  std::ostringstream out;
  const std::uint64_t handled = service::serve_stream(svc, in, out);
  EXPECT_EQ(handled, static_cast<std::uint64_t>(expected));

  // One reply *frame* per request: a single ok/shed/err line, except the
  // counted multi-line metrics/slowlog frames, whose headers must announce
  // exactly the payload lines that follow (no truncated frames).
  std::vector<std::string> lines;
  {
    std::istringstream replies(out.str());
    for (std::string line; std::getline(replies, line);)
      lines.push_back(line);
  }
  std::uint64_t reply_count = 0;
  for (std::size_t i = 0; i < lines.size(); ++reply_count) {
    const std::size_t next = consume_reply_frame(lines, i);
    ASSERT_NE(next, std::string::npos)
        << "malformed frame at line " << i << ": " << lines[i];
    i = next;
  }
  EXPECT_EQ(reply_count, handled);

  // The session stayed sane: a normal query still answers after the abuse.
  const auto vars = test::all_variables(pag);
  ASSERT_FALSE(vars.empty());
  service::Request probe;
  probe.verb = service::Verb::kQuery;
  probe.a = vars[0];
  EXPECT_EQ(svc.call(probe).status, service::Reply::Status::kOk);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- sharing-state persistence ---------------------------------------------

cfl::SolverOptions state_fuzz_opts() {
  cfl::SolverOptions opts;
  opts.budget = 1u << 20;
  opts.data_sharing = true;
  opts.tau_finished = 2;
  opts.tau_unfinished = 10;
  return opts;
}

class StateFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StateFuzzTest, MutatedStateFilesNeverCrashTheLoader) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam();
  cfg.heap_edge_pairs = 4;  // load/store matches are what mint jmp entries
  const auto pag = test::random_layered_pag(cfg);
  const auto vars = test::all_variables(pag);

  const cfl::SolverOptions opts = state_fuzz_opts();
  std::string text;
  {
    cfl::ContextTable contexts;
    cfl::JmpStore store;
    cfl::Solver solver(pag, contexts, &store, opts);
    for (const NodeId v : vars) (void)solver.points_to(v);
    std::ostringstream os;
    cfl::save_sharing_state(os, pag, contexts, store);
    text = os.str();
  }

  support::Rng rng(GetParam() * 48271 + 11);
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = text;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(4)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(' ' + rng.below(95));
          break;
        case 1:  // truncate (a torn write)
          mutated.resize(pos);
          break;
        case 2:  // delete a span
          mutated.erase(pos, 1 + rng.below(8));
          break;
        case 3:  // duplicate a span
          mutated.insert(pos, mutated.substr(pos, 1 + rng.below(8)));
          break;
      }
    }

    cfl::ContextTable contexts;
    cfl::JmpStore store;
    std::istringstream is(mutated);
    std::string error;
    const bool ok = cfl::load_sharing_state(is, pag, contexts, store, &error);
    if (!ok) {
      EXPECT_FALSE(error.empty());
    }

    // Whatever the loader accepted (possibly a prefix-valid corruption), the
    // tables must still be usable: the solver must run to completion and
    // return only ids that are objects of this PAG. Exact sets are not
    // checked — a mutation can produce a parseable file with different but
    // well-formed entries.
    cfl::Solver solver(pag, contexts, &store, opts);
    for (std::size_t i = 0; i < vars.size() && i < 4; ++i) {
      const auto result = solver.points_to(vars[i]);
      for (const NodeId n : result.nodes()) {
        ASSERT_LT(n.value(), pag.node_count());
        EXPECT_TRUE(pag.is_object(n));
      }
    }
  }
}

// The binary v3 loader takes the same hammering: bit flips, truncations,
// and splices across the header, section arrays, and the trailing target
// block. Counts and offsets are attacker-controlled u64s, so every accept
// must still yield tables the solver can run on.
TEST_P(StateFuzzTest, MutatedV3StateImagesNeverCrashTheLoader) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam();
  cfg.heap_edge_pairs = 4;
  const auto pag = test::random_layered_pag(cfg);
  const auto vars = test::all_variables(pag);

  const cfl::SolverOptions opts = state_fuzz_opts();
  std::string image;
  {
    cfl::ContextTable contexts;
    cfl::JmpStore store;
    cfl::Solver solver(pag, contexts, &store, opts);
    for (const NodeId v : vars) (void)solver.points_to(v);
    const std::string path = testing::TempDir() + "fuzz_v3_" +
                             std::to_string(GetParam()) + ".state";
    std::string error;
    ASSERT_TRUE(
        cfl::save_sharing_state_file_v3(path, pag, contexts, store, &error))
        << error;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    image = os.str();
  }
  ASSERT_GT(image.size(), 64u);

  support::Rng rng(GetParam() * 69621 + 17);
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = image;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(4)) {
        case 0:  // flip a byte (any value — this is binary data)
          mutated[pos] = static_cast<char>(rng.below(256));
          break;
        case 1:  // truncate (a torn write)
          mutated.resize(pos);
          break;
        case 2:  // delete a span (shears every later section offset)
          mutated.erase(pos, 1 + rng.below(16));
          break;
        case 3:  // duplicate a span
          mutated.insert(pos, mutated.substr(pos, 1 + rng.below(16)));
          break;
      }
    }

    cfl::ContextTable contexts;
    cfl::JmpStore store;
    std::string error;
    const bool ok = cfl::load_sharing_state_v3(mutated.data(), mutated.size(),
                                               pag, contexts, store, &error);
    if (!ok) {
      EXPECT_FALSE(error.empty());
    }
    cfl::Solver solver(pag, contexts, &store, opts);
    for (std::size_t i = 0; i < vars.size() && i < 4; ++i) {
      const auto result = solver.points_to(vars[i]);
      for (const NodeId n : result.nodes()) {
        ASSERT_LT(n.value(), pag.node_count());
        EXPECT_TRUE(pag.is_object(n));
      }
    }
  }
}

TEST(StateFuzz, HostileFinishedCountIsRejectedWithoutAllocating) {
  test::RandomPagConfig cfg;
  cfg.seed = 3;
  const auto pag = test::random_layered_pag(cfg);

  // A structurally valid file whose trailing fin line claims four billion
  // targets. The loader must reject it from the line length alone — a
  // reserve() of the claimed count would be an instant multi-GB allocation.
  std::string text;
  {
    cfl::ContextTable contexts;
    cfl::JmpStore store;
    std::ostringstream os;
    cfl::save_sharing_state(os, pag, contexts, store);
    text = os.str();
  }
  text += "fin 0 1 0 5 4000000000\n";

  cfl::ContextTable contexts;
  cfl::JmpStore store;
  std::istringstream is(text);
  std::string error;
  EXPECT_FALSE(cfl::load_sharing_state(is, pag, contexts, store, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(store.entry_count(), 0u);
}

TEST_P(StateFuzzTest, BudgetCappedQueriesPublishOnlySoundJmps) {
  // Differential check for admission-control soundness: a store warmed
  // exclusively by budget-capped queries (which publish unfinished jmps
  // clamped to the *effective* budget) must not mislead a later full-budget
  // solver into wrong or incomplete answers.
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() * 7 + 1;
  cfg.heap_edge_pairs = 4;
  const auto pag = test::random_layered_pag(cfg);
  const auto vars = test::all_variables(pag);

  const cfl::SolverOptions opts = state_fuzz_opts();
  cfl::ContextTable contexts;
  cfl::JmpStore store;
  {
    cfl::Solver capped(pag, contexts, &store, opts);
    capped.set_query_budget(8);  // nearly everything runs out of budget
    for (const NodeId v : vars) (void)capped.points_to(v);
  }

  cfl::Solver warm(pag, contexts, &store, opts);
  cfl::SolverOptions plain_opts = state_fuzz_opts();
  plain_opts.data_sharing = false;
  cfl::ContextTable plain_contexts;
  cfl::Solver plain(pag, plain_contexts, nullptr, plain_opts);
  for (const NodeId v : vars) {
    const auto got = warm.points_to(v);
    const auto want = plain.points_to(v);
    EXPECT_EQ(got.status, want.status) << "var " << v.value();
    EXPECT_EQ(got.nodes(), want.nodes()) << "var " << v.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace parcfl::pag
