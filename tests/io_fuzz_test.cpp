// PAG text-format fuzzing: random graphs round-trip bit-exactly; mutated
// inputs never crash the parser (they parse or fail with a message).

#include <gtest/gtest.h>

#include "pag/pag_io.hpp"
#include "pag/validate.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace parcfl::pag {
namespace {

class IoFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzzTest, RoundTripIsExact) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam();
  cfg.layers = 2 + GetParam() % 4;
  cfg.vars_per_layer = 2 + GetParam() % 5;
  cfg.objects = 1 + GetParam() % 6;
  cfg.assign_edges = GetParam() % 12;
  cfg.param_ret_edges = GetParam() % 10;
  cfg.heap_edge_pairs = GetParam() % 6;
  const auto pag = test::random_layered_pag(cfg);

  const std::string text = write_pag_string(pag);
  std::string error;
  const auto parsed = read_pag_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(write_pag_string(*parsed), text);

  // Structure survives, not just the text.
  ASSERT_EQ(parsed->node_count(), pag.node_count());
  ASSERT_EQ(parsed->edge_count(), pag.edge_count());
  for (std::uint32_t n = 0; n < pag.node_count(); ++n) {
    EXPECT_EQ(parsed->kind(NodeId(n)), pag.kind(NodeId(n)));
    EXPECT_EQ(parsed->node(NodeId(n)).method, pag.node(NodeId(n)).method);
    EXPECT_EQ(parsed->node(NodeId(n)).is_application,
              pag.node(NodeId(n)).is_application);
  }
  for (unsigned k = 0; k < kEdgeKindCount; ++k)
    EXPECT_EQ(parsed->edge_count_of_kind(static_cast<EdgeKind>(k)),
              pag.edge_count_of_kind(static_cast<EdgeKind>(k)));
}

TEST_P(IoFuzzTest, MutatedInputNeverCrashes) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam();
  const auto pag = test::random_layered_pag(cfg);
  std::string text = write_pag_string(pag);

  support::Rng rng(GetParam() * 977 + 13);
  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = text;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      if (mutated.empty()) break;
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>(' ' + rng.below(95));
          break;
        case 1:  // delete a span
          mutated.erase(pos, 1 + rng.below(5));
          break;
        case 2:  // duplicate a span
          mutated.insert(pos, mutated.substr(pos, 1 + rng.below(5)));
          break;
      }
    }
    std::string error;
    const auto parsed = read_pag_string(mutated, &error);
    // Either outcome is fine; a parse must yield a structurally sane graph.
    if (parsed.has_value()) {
      EXPECT_LE(parsed->edge_count(), 100000u);
      (void)validate(*parsed);  // must not crash either
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzTest, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace parcfl::pag
