// Router tests: the consistent-hash scale-out front-end (DESIGN.md §14,
// src/service/router.*) plus the worker-side continuation verbs it drives.
//
//  * identity — the acceptance bar for the whole scale-out design: a
//    router+fleet answer must be object-identical to the single-node answer
//    for every query, in every engine mode, cold and warm;
//  * failure — a worker dying mid-flight fails the distributed query as a
//    counted `err partition unavailable` within the receive deadline, never
//    a hang (the PR's regression test);
//  * teardown — fleet + router destruction with concurrent clients in
//    flight stays clean (the tsan target);
//  * wire — the part handshake and the cont/cfact/creset continuation verbs
//    against a WireSession, including the per-connection fact isolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cfl/engine.hpp"
#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "pag/partition.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "service/worker.hpp"
#include "synth/generator.hpp"

namespace parcfl::service {
namespace {

using pag::NodeId;

struct Workload {
  pag::Pag pag;
  std::vector<NodeId> queries;
};

Workload container_workload(std::uint64_t seed = 21) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 12;
  cfg.library_methods = 12;
  cfg.containers = 3;
  cfg.container_use_blocks = 10;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

cfl::EngineOptions engine_options(cfl::Mode mode, unsigned threads) {
  cfl::EngineOptions o;
  o.mode = mode;
  o.threads = threads;
  o.solver.budget = 200'000;
  o.solver.tau_finished = 10;
  o.solver.tau_unfinished = 100;
  return o;
}

#ifndef _WIN32

/// An in-process fleet: one partition Session + TcpServer per partition and
/// a RouterCore over all of them — the same wiring parcfl_route does across
/// processes.
struct Fleet {
  std::shared_ptr<const pag::PartitionMap> map;
  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<std::unique_ptr<TcpServer>> servers;
  std::vector<std::thread> serve_threads;
  std::unique_ptr<RouterCore> router;

  /// Simulate a worker crash: close its listener and half-close every live
  /// connection, so the router's next send/recv on the pooled connection
  /// fails and its reconnect attempt is refused.
  void kill_worker(std::size_t i) {
    servers[i]->shutdown();
    if (serve_threads[i].joinable()) serve_threads[i].join();
  }

  ~Fleet() {
    router.reset();  // closes pooled worker connections first
    for (auto& s : servers) s->shutdown();
    for (auto& t : serve_threads)
      if (t.joinable()) t.join();
  }
};

std::unique_ptr<Fleet> make_fleet(const pag::Pag& full, std::uint32_t parts,
                                  cfl::Mode mode, unsigned threads,
                                  std::uint32_t deadline_ms = 5000) {
  auto fleet = std::make_unique<Fleet>();
  pag::PartitionOptions po;
  po.parts = parts;
  po.seed = 1;
  fleet->map =
      std::make_shared<const pag::PartitionMap>(pag::partition_pag(full, po));

  RouterOptions ro;
  ro.map = fleet->map;
  ro.deadline_ms = deadline_ms;
  std::string error;
  for (std::uint32_t p = 0; p < parts; ++p) {
    ServiceOptions so;
    so.session.engine = engine_options(mode, threads);
    so.session.partition = fleet->map;
    so.session.partition_id = p;
    fleet->services.push_back(std::make_unique<QueryService>(
        pag::make_sub_pag(full, *fleet->map, p), so));
    fleet->servers.push_back(std::make_unique<TcpServer>(
        *fleet->services.back(), std::uint16_t{0}, &error));
    if (!fleet->servers.back()->ok()) return nullptr;
    TcpServer* server = fleet->servers.back().get();
    fleet->serve_threads.emplace_back([server] { server->serve(); });
    ro.workers.push_back(std::to_string(server->port()));
  }
  fleet->router = std::make_unique<RouterCore>(std::move(ro), &error);
  if (!fleet->router->ok()) {
    ADD_FAILURE() << "router init failed: " << error;
    return nullptr;
  }
  return fleet;
}

Request query_request(NodeId var) {
  Request r;
  r.verb = Verb::kQuery;
  r.a = var;
  return r;
}

// ---- identity --------------------------------------------------------------

TEST(RouterIdentity, MatchesSingleNodeInEveryMode) {
  const auto w = container_workload();
  for (const cfl::Mode mode :
       {cfl::Mode::kSequential, cfl::Mode::kNaive, cfl::Mode::kDataSharing,
        cfl::Mode::kDataSharingScheduling}) {
    const auto fleet = make_fleet(w.pag, 2, mode, 2);
    ASSERT_NE(fleet, nullptr);
    ServiceOptions so;
    so.session.engine = engine_options(mode, 2);
    QueryService single(w.pag, so);

    // Two passes: cold (both sides first-run) and warm (the single node has
    // published jmps; the fleet must still agree object-for-object).
    for (const char* pass : {"cold", "warm"}) {
      for (std::size_t i = 0; i < w.queries.size(); ++i) {
        const Reply distributed = fleet->router->handle(query_request(w.queries[i]));
        const Reply reference = single.call(query_request(w.queries[i]));
        ASSERT_EQ(distributed.status, reference.status)
            << pass << " query " << w.queries[i].value();
        EXPECT_EQ(distributed.query_status, reference.query_status)
            << pass << " query " << w.queries[i].value();
        EXPECT_EQ(distributed.objects, reference.objects)
            << pass << " query " << w.queries[i].value();
        if (i % 4 == 3) {
          Request aq;
          aq.verb = Verb::kAlias;
          aq.a = w.queries[i];
          aq.b = w.queries[(i * 7 + 2) % w.queries.size()];
          const Reply da = fleet->router->handle(aq);
          const Reply ra = single.call(Request(aq));
          EXPECT_EQ(da.status, ra.status) << pass << " alias";
          EXPECT_EQ(da.alias, ra.alias) << pass << " alias";
        }
      }
    }
  }
}

TEST(RouterIdentity, ThreePartitionsStillExact) {
  const auto w = container_workload(23);
  const auto fleet =
      make_fleet(w.pag, 3, cfl::Mode::kDataSharingScheduling, 2);
  ASSERT_NE(fleet, nullptr);
  ServiceOptions so;
  so.session.engine = engine_options(cfl::Mode::kDataSharingScheduling, 2);
  QueryService single(w.pag, so);
  for (const NodeId q : w.queries) {
    const Reply distributed = fleet->router->handle(query_request(q));
    const Reply reference = single.call(query_request(q));
    EXPECT_EQ(distributed.objects, reference.objects) << q.value();
    EXPECT_EQ(distributed.query_status, reference.query_status) << q.value();
  }
}

// ---- request validation ----------------------------------------------------

TEST(Router, ValidatesRequestsAndAnswersStats) {
  const auto w = container_workload();
  const auto fleet = make_fleet(w.pag, 2, cfl::Mode::kSequential, 1);
  ASSERT_NE(fleet, nullptr);
  EXPECT_EQ(fleet->router->node_count(), w.pag.node_count());

  // Unsupported verbs are rejected, not forwarded.
  Request save;
  save.verb = Verb::kSave;
  save.path = "x";
  const Reply r = fleet->router->handle(save);
  EXPECT_EQ(r.status, Reply::Status::kError);
  EXPECT_NE(r.text.find("unsupported"), std::string::npos) << r.text;

  // Object-node queries fail with the same error text the service uses, so
  // identity holds for rejections too.
  for (std::uint32_t v = 0; v < w.pag.node_count(); ++v) {
    if (w.pag.is_variable(NodeId(v))) continue;
    const Reply obj = fleet->router->handle(query_request(NodeId(v)));
    EXPECT_EQ(obj.status, Reply::Status::kError);
    EXPECT_NE(obj.text.find("not a variable node"), std::string::npos);
    break;
  }

  // The stats verb answers the router's own counters.
  Request stats;
  stats.verb = Verb::kStats;
  const Reply s = fleet->router->handle(stats);
  EXPECT_EQ(s.status, Reply::Status::kOk);
  EXPECT_NE(s.text.find("\"queries\""), std::string::npos) << s.text;
  EXPECT_NE(fleet->router->stats_json().find("\"workers\""), std::string::npos);

  // handle_line: the wire front-end parses, handles and formats.
  std::string reply_line;
  EXPECT_TRUE(fleet->router->handle_line("ping", reply_line));
  EXPECT_EQ(reply_line, "ok pong\n");
  EXPECT_TRUE(fleet->router->handle_line("nonsense", reply_line));
  EXPECT_EQ(reply_line.rfind("err ", 0), 0u) << reply_line;
  EXPECT_FALSE(fleet->router->handle_line("quit", reply_line));
  EXPECT_EQ(reply_line, "ok bye\n");
}

// ---- worker failure --------------------------------------------------------

TEST(Router, DeadWorkerFailsQueryWithinDeadline) {
  const auto w = container_workload();
  auto fleet =
      make_fleet(w.pag, 2, cfl::Mode::kSequential, 1, /*deadline_ms=*/500);
  ASSERT_NE(fleet, nullptr);

  // A query var homed on partition 1 — the partition about to die.
  NodeId victim = NodeId::invalid();
  for (const NodeId q : w.queries)
    if (fleet->map->owner_of(q) == 1) {
      victim = q;
      break;
    }
  ASSERT_TRUE(victim.valid()) << "no query var owned by partition 1";

  fleet->kill_worker(1);

  const auto start = std::chrono::steady_clock::now();
  const Reply r = fleet->router->handle(query_request(victim));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(r.status, Reply::Status::kError);
  EXPECT_NE(r.text.find("partition unavailable"), std::string::npos) << r.text;
  // Deadline (500ms) + one transparent reconnect attempt, with slack for a
  // loaded CI host — the point is "bounded", not "fast": a hang would trip
  // the test binary's own timeout long before this.
  EXPECT_LT(elapsed, 10'000) << "dead worker stalled the query";

  // The failure is counted, and the router itself stays serviceable.
  EXPECT_NE(fleet->router->stats_json().find("\"unavailable\":1"),
            std::string::npos)
      << fleet->router->stats_json();
  Request stats;
  stats.verb = Verb::kStats;
  EXPECT_EQ(fleet->router->handle(stats).status, Reply::Status::kOk);
}

// ---- teardown under load ---------------------------------------------------

TEST(Router, TeardownWithConcurrentClientsIsClean) {
  const auto w = container_workload();
  auto fleet = make_fleet(w.pag, 2, cfl::Mode::kDataSharingScheduling, 2);
  ASSERT_NE(fleet, nullptr);

  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c)
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < w.queries.size(); i += 4) {
        const Reply r = fleet->router->handle(query_request(w.queries[i]));
        if (r.status == Reply::Status::kOk) answered.fetch_add(1);
      }
    });
  for (auto& t : clients) t.join();
  EXPECT_GT(answered.load(), 0u);
  fleet.reset();  // router, then servers, then serve threads — must not hang
}

// ---- worker wire verbs -----------------------------------------------------

TEST(WorkerWire, PartHandshake) {
  const auto w = container_workload();
  pag::PartitionOptions po;
  po.parts = 2;
  const auto map =
      std::make_shared<const pag::PartitionMap>(pag::partition_pag(w.pag, po));
  ServiceOptions so;
  so.session.engine = engine_options(cfl::Mode::kSequential, 1);
  so.session.partition = map;
  so.session.partition_id = 1;
  QueryService svc(pag::make_sub_pag(w.pag, *map, 1), so);
  WireSession ws(svc);

  std::string reply;
  EXPECT_TRUE(ws.handle("part", reply));
  EXPECT_EQ(reply, "ok part 1 2 " + std::to_string(w.pag.node_count()) + " " +
                       std::to_string(w.pag.revision()) + "\n");
  EXPECT_TRUE(ws.handle("part 1", reply));
  EXPECT_EQ(reply.rfind("ok part 1 ", 0), 0u) << reply;
  EXPECT_TRUE(ws.handle("part 0", reply));
  EXPECT_EQ(reply, "err unknown partition\n");

  // A plain (un-partitioned) service refuses all worker verbs.
  ServiceOptions plain;
  plain.session.engine = engine_options(cfl::Mode::kSequential, 1);
  QueryService whole(w.pag, plain);
  WireSession plain_ws(whole);
  for (const char* verb : {"part", "creset", "cont b 0 -"}) {
    EXPECT_TRUE(plain_ws.handle(verb, reply));
    EXPECT_EQ(reply, "err not a worker\n") << verb;
  }
}

TEST(WorkerWire, ContinuationRunsAndFactsReset) {
  const auto w = container_workload();
  pag::PartitionOptions po;
  po.parts = 2;
  const auto map =
      std::make_shared<const pag::PartitionMap>(pag::partition_pag(w.pag, po));
  NodeId local = NodeId::invalid();
  for (const NodeId q : w.queries)
    if (map->owner_of(q) == 0) {
      local = q;
      break;
    }
  ASSERT_TRUE(local.valid());

  ServiceOptions so;
  so.session.engine = engine_options(cfl::Mode::kSequential, 1);
  so.session.partition = map;
  so.session.partition_id = 0;
  QueryService svc(pag::make_sub_pag(w.pag, *map, 0), so);
  WireSession ws(svc);

  const std::string node = std::to_string(local.value());
  std::string reply;
  // A backward task from an owned variable runs and answers a counted frame.
  EXPECT_TRUE(ws.handle("cont b " + node + " -", reply));
  ASSERT_EQ(reply.rfind("ok cont ", 0), 0u) << reply;

  // Seeding facts: charges accumulate, duplicates are union-idempotent.
  EXPECT_TRUE(ws.handle("cfact b " + node + " - 1 " + node + ":-", reply));
  EXPECT_EQ(reply, "ok cfact 1\n");
  EXPECT_TRUE(ws.handle("cfact b " + node + " - 1 " + node + ":-", reply));
  EXPECT_EQ(reply, "ok cfact 1\n") << "duplicate fact charged twice";
  EXPECT_EQ(ws.fact_total(), 1u);

  // creset drops the connection's accumulated facts.
  EXPECT_TRUE(ws.handle("creset", reply));
  EXPECT_EQ(reply, "ok creset\n");
  EXPECT_EQ(ws.fact_total(), 0u);
  EXPECT_TRUE(ws.handle("cfact b " + node + " - 1 " + node + ":-", reply));
  EXPECT_EQ(reply, "ok cfact 1\n");

  // Hostile worker frames fail as protocol errors, not crashes.
  for (const char* bad :
       {"cont", "cont x 0 -", "cont b 999999999 -", "cont b 0 1.2.x",
        "cfact b 0 - 2 0:-", "cfact b 0 - 1 nocolon", "part 99999999999",
        "creset now"}) {
    EXPECT_TRUE(ws.handle(bad, reply)) << bad;
    EXPECT_EQ(reply.rfind("err ", 0), 0u) << bad << " -> " << reply;
  }
}

#endif  // _WIN32

}  // namespace
}  // namespace parcfl::service
