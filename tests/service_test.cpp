// Service tests: the long-lived query server built on the warm BatchRunner.
//
//  * protocol — total parsing (any line → Request or error) and reply
//    formatting;
//  * Session — warm-state reuse (the ISSUE acceptance bar: a repeated batch
//    traverses >= 2x fewer steps than the cold run), request-order routing
//    through the DQ scheduler, per-item budgets;
//  * QueryService — micro-batch coalescing, admission control (overload and
//    deadline sheds), multi-client concurrency (the tsan target), save/load
//    warm start;
//  * wire — serve_stream over string streams and a loopback TCP smoke test.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cfl/engine.hpp"
#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "service/stats.hpp"
#include "support/metrics.hpp"
#include "synth/generator.hpp"
#include "test_util.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace parcfl::service {
namespace {

using pag::NodeId;

struct Workload {
  pag::Pag pag;
  std::vector<NodeId> queries;
};

Workload container_workload(std::uint64_t seed = 21) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 12;
  cfg.library_methods = 12;
  cfg.containers = 3;
  cfg.container_use_blocks = 10;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

cfl::EngineOptions engine_options(cfl::Mode mode, unsigned threads) {
  cfl::EngineOptions o;
  o.mode = mode;
  o.threads = threads;
  o.solver.budget = 200'000;
  // Miniature workloads: scale the taus down so sharing has something to do
  // (the paper's τF=100/τU=10000 are tuned for full-size benchmarks).
  o.solver.tau_finished = 10;
  o.solver.tau_unfinished = 100;
  return o;
}

Session::Options session_options(unsigned threads) {
  Session::Options o;
  o.engine = engine_options(cfl::Mode::kDataSharingScheduling, threads);
  return o;
}

/// var -> sorted points-to set from an independent sequential engine run.
std::map<std::uint32_t, std::vector<NodeId>> sequential_baseline(
    const Workload& w) {
  cfl::EngineOptions o = engine_options(cfl::Mode::kSequential, 1);
  o.collect_objects = true;
  const auto r = cfl::Engine(w.pag, o).run(w.queries);
  std::map<std::uint32_t, std::vector<NodeId>> m;
  for (std::size_t i = 0; i < r.outcomes.size(); ++i)
    m[r.outcomes[i].var.value()] = r.objects[i];
  return m;
}

// ---- protocol ---------------------------------------------------------------

TEST(Protocol, ParsesQueryForms) {
  Request r;
  std::string error;
  ASSERT_TRUE(parse_request("query 17", 100, r, error)) << error;
  EXPECT_EQ(r.verb, Verb::kQuery);
  EXPECT_EQ(r.a.value(), 17u);
  EXPECT_EQ(r.budget, 0u);

  ASSERT_TRUE(parse_request("query v17 budget 5 deadline 9", 100, r, error));
  EXPECT_EQ(r.a.value(), 17u);
  EXPECT_EQ(r.budget, 5u);
  EXPECT_EQ(r.deadline_ms, 9u);

  ASSERT_TRUE(parse_request("alias v3 v4\r", 100, r, error));
  EXPECT_EQ(r.verb, Verb::kAlias);
  EXPECT_EQ(r.a.value(), 3u);
  EXPECT_EQ(r.b.value(), 4u);

  ASSERT_TRUE(parse_request("save /tmp/x.state", 100, r, error));
  EXPECT_EQ(r.verb, Verb::kSave);
  EXPECT_EQ(r.path, "/tmp/x.state");

  for (const char* line : {"stats", "ping", "quit"})
    EXPECT_TRUE(parse_request(line, 100, r, error)) << line;
}

TEST(Protocol, RejectsMalformedLines) {
  Request r;
  std::string error;
  const char* bad[] = {
      "",                          // empty
      "query",                     // missing node
      "query x",                   // non-numeric
      "query -1",                  // not a node id
      "query 100",                 // out of range (node_count = 100)
      "query 3 budget",            // dangling option
      "query 3 frobnicate 7",      // unknown option
      "alias 1",                   // missing second node
      "alias 1 2 3",               // trailing junk
      "save",                      // missing path
      "frobnicate 12",             // unknown verb
      "ping extra",                // arity
  };
  for (const char* line : bad) {
    error.clear();
    EXPECT_FALSE(parse_request(line, 100, r, error)) << "accepted: " << line;
    EXPECT_FALSE(error.empty()) << line;
  }
  // Oversized lines are rejected before tokenisation.
  std::string huge(kMaxRequestLine + 1, 'q');
  EXPECT_FALSE(parse_request(huge, 100, r, error));
}

TEST(Protocol, FormatsReplies) {
  Reply q;
  q.verb = Verb::kQuery;
  q.query_status = cfl::QueryStatus::kComplete;
  q.charged_steps = 7;
  q.objects = {NodeId(4), NodeId(9)};
  EXPECT_EQ(format_reply(q), "ok complete 7 2 4 9");

  Reply a;
  a.verb = Verb::kAlias;
  a.alias = cfl::Solver::AliasAnswer::kNo;
  a.charged_steps = 12;
  EXPECT_EQ(format_reply(a), "ok no 12");

  Reply shed;
  shed.status = Reply::Status::kShedOverload;
  EXPECT_EQ(format_reply(shed), "shed overload");
  shed.status = Reply::Status::kShedDeadline;
  EXPECT_EQ(format_reply(shed), "shed deadline");

  Reply err;
  err.status = Reply::Status::kError;
  err.text = "bad node";
  EXPECT_EQ(format_reply(err), "err bad node");
}

// ---- Session ---------------------------------------------------------------

TEST(Session, WarmRepeatBatchTraversesAtLeastTwiceFewerSteps) {
  const auto w = container_workload();
  // Deterministic pipeline state: wait for the prefilter so both passes see
  // it ready (readiness landing between the passes under slow schedulers —
  // tsan — used to skew the ratio run-to-run), and mint aggressively so the
  // repeat batch rides the store as hard as the subsystem allows.
  Session::Options opts = session_options(4);
  opts.engine.solver.tau_finished = 1;
  Session session(w.pag, opts);
  session.wait_for_prefilter();

  std::vector<Session::Item> items;
  for (const NodeId q : w.queries) items.push_back({q, 0});

  const auto cold = session.run_batch(items);
  const auto warm = session.run_batch(items);

  ASSERT_GT(cold.delta.traversed_steps, 0u);
  // The ISSUE acceptance bar: the repeated batch rides the jmp shortcuts the
  // cold run minted.
  EXPECT_GE(cold.delta.traversed_steps, 2 * warm.delta.traversed_steps)
      << "cold=" << cold.delta.traversed_steps
      << " warm=" << warm.delta.traversed_steps;

  // Warm answers are the same answers.
  ASSERT_EQ(cold.items.size(), warm.items.size());
  for (std::size_t i = 0; i < cold.items.size(); ++i)
    EXPECT_EQ(cold.items[i].objects, warm.items[i].objects) << i;
}

TEST(Session, ResultsFollowRequestOrderDespiteScheduling) {
  const auto w = container_workload();
  const auto baseline = sequential_baseline(w);
  Session session(w.pag, session_options(4));

  // Submit in reverse order so any identity assumption about the DQ
  // schedule's permutation shows up as a mismatch.
  std::vector<Session::Item> items;
  for (auto it = w.queries.rbegin(); it != w.queries.rend(); ++it)
    items.push_back({*it, 0});
  const auto batch = session.run_batch(items);

  ASSERT_EQ(batch.items.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(batch.items[i].status, cfl::QueryStatus::kComplete) << i;
    EXPECT_EQ(batch.items[i].objects, baseline.at(items[i].var.value())) << i;
  }
}

TEST(Session, PerItemBudgetCapsWork) {
  const auto w = container_workload();

  // Find the most expensive query from a fresh (cold) probe session.
  Session probe(w.pag, session_options(1));
  std::vector<Session::Item> all;
  for (const NodeId q : w.queries) all.push_back({q, 0});
  const auto full = probe.run_batch(all);
  std::size_t costly = 0;
  for (std::size_t i = 0; i < full.items.size(); ++i)
    if (full.items[i].charged_steps > full.items[costly].charged_steps)
      costly = i;
  ASSERT_GT(full.items[costly].charged_steps, 10u)
      << "workload too trivial to test budgets";

  // A fresh session must cut that query short under a tiny budget...
  Session session(w.pag, session_options(1));
  std::vector<Session::Item> capped{{all[costly].var, 2}};
  const auto r = session.run_batch(capped);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_NE(r.items[0].status, cfl::QueryStatus::kComplete);
  EXPECT_LT(r.items[0].charged_steps, full.items[costly].charged_steps);

  // ...and a later uncapped run in the same session still completes with the
  // full answer (the budget override does not stick).
  std::vector<Session::Item> uncapped{{all[costly].var, 0}};
  const auto r2 = session.run_batch(uncapped);
  EXPECT_EQ(r2.items[0].status, cfl::QueryStatus::kComplete);
  EXPECT_EQ(r2.items[0].objects, full.items[costly].objects);
}

// ---- QueryService ----------------------------------------------------------

ServiceOptions service_options(unsigned threads) {
  ServiceOptions o;
  o.session = session_options(threads);
  return o;
}

Request query_request(NodeId var, std::uint64_t budget = 0,
                      std::uint64_t deadline_ms = 0) {
  Request r;
  r.verb = Verb::kQuery;
  r.a = var;
  r.budget = budget;
  r.deadline_ms = deadline_ms;
  return r;
}

TEST(QueryService, MicroBatchCoalescesConcurrentArrivals) {
  const auto w = container_workload();
  ServiceOptions o = service_options(2);
  o.max_batch = 16;
  o.max_linger = std::chrono::milliseconds(200);
  QueryService svc(w.pag, o);

  // Fire-and-forget eight requests, then collect: all land well inside the
  // linger window, so the collector sees them as one batch.
  std::vector<std::future<Reply>> futures;
  for (std::size_t i = 0; i < 8; ++i)
    futures.push_back(svc.submit(query_request(w.queries[i % w.queries.size()])));
  for (auto& f : futures)
    EXPECT_EQ(f.get().status, Reply::Status::kOk);

  const auto s = svc.stats();
  EXPECT_EQ(s.queries_served, 8u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.max_batch_size, 8u);
}

TEST(QueryService, FullBatchDispatchesBeforeLingerExpires) {
  const auto w = container_workload();
  ServiceOptions o = service_options(2);
  o.max_batch = 4;
  o.max_linger = std::chrono::seconds(30);  // only batch-full can dispatch
  QueryService svc(w.pag, o);

  std::vector<std::future<Reply>> futures;
  for (std::size_t i = 0; i < 4; ++i)
    futures.push_back(svc.submit(query_request(w.queries[i])));
  for (auto& f : futures)  // would hang ~30s if the size trigger were broken
    EXPECT_EQ(f.get().status, Reply::Status::kOk);
  EXPECT_EQ(svc.stats().batches, 1u);
}

TEST(QueryService, OverloadShedsInsteadOfQueueingUnboundedly) {
  const auto w = container_workload();
  ServiceOptions o = service_options(1);
  o.max_batch = 64;
  o.max_linger = std::chrono::milliseconds(100);
  o.max_queue = 2;
  QueryService svc(w.pag, o);

  // All eight arrive while the collector is still lingering on the first:
  // two fit the queue, the rest must shed.
  std::vector<std::future<Reply>> futures;
  for (std::size_t i = 0; i < 8; ++i)
    futures.push_back(svc.submit(query_request(w.queries[i])));
  std::uint64_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const Reply r = f.get();
    if (r.status == Reply::Status::kOk) ++ok;
    if (r.status == Reply::Status::kShedOverload) ++shed;
  }
  EXPECT_EQ(ok + shed, 8u);
  EXPECT_GE(shed, 1u);
  EXPECT_LE(ok, 2u);
  EXPECT_EQ(svc.stats().shed_overload, shed);
}

TEST(QueryService, ExpiredDeadlineShedsAtDispatch) {
  const auto w = container_workload();
  ServiceOptions o = service_options(1);
  o.max_batch = 64;
  o.max_linger = std::chrono::milliseconds(100);
  QueryService svc(w.pag, o);

  // The request lingers ~100ms before its batch dispatches — far past its
  // 1ms deadline.
  const Reply r = svc.call(query_request(w.queries[0], 0, /*deadline_ms=*/1));
  EXPECT_EQ(r.status, Reply::Status::kShedDeadline);
  EXPECT_EQ(svc.stats().shed_deadline, 1u);
  EXPECT_EQ(svc.stats().queries_served, 0u);
}

TEST(QueryService, AliasAnswersMatchTheFig2Paper) {
  const auto f = test::fig2();
  QueryService svc(f.lowered.pag, service_options(2));

  Request r;
  r.verb = Verb::kAlias;
  r.a = f.s1;
  r.b = f.n1;  // both reach o16
  Reply may = svc.call(r);
  ASSERT_EQ(may.status, Reply::Status::kOk);
  EXPECT_EQ(may.alias, cfl::Solver::AliasAnswer::kMay);

  r.a = f.s1;
  r.b = f.s2;  // context-sensitively disjoint: {o16} vs {o20}
  Reply no = svc.call(r);
  ASSERT_EQ(no.status, Reply::Status::kOk);
  EXPECT_EQ(no.alias, cfl::Solver::AliasAnswer::kNo);

  const auto s = svc.stats();
  EXPECT_EQ(s.alias_served, 2u);
  EXPECT_EQ(s.queries_served, 0u);
}

// The tsan acceptance test: many client threads hammer one session while the
// collector micro-batches into the multi-threaded DQ engine.
TEST(QueryService, MultiClientConcurrentSessionIsSafe) {
  const auto w = container_workload();
  const auto baseline = sequential_baseline(w);
  ServiceOptions o = service_options(4);
  o.max_batch = 8;
  o.max_linger = std::chrono::microseconds(200);
  QueryService svc(w.pag, o);

  constexpr unsigned kClients = 8;
  constexpr unsigned kPerClient = 40;
  std::atomic<std::uint64_t> wrong{0};

  auto client = [&](unsigned id) {
    for (unsigned i = 0; i < kPerClient; ++i) {
      const NodeId var = w.queries[(id * 13 + i * 7) % w.queries.size()];
      if (i % 10 == 9) {
        Request r;
        r.verb = Verb::kStats;
        if (svc.call(r).status != Reply::Status::kOk) ++wrong;
      } else if (i % 10 == 4) {
        Request r;
        r.verb = Verb::kAlias;
        r.a = var;
        r.b = w.queries[(id * 13 + i * 7 + 1) % w.queries.size()];
        const Reply reply = svc.call(r);
        if (reply.status != Reply::Status::kOk ||
            reply.alias == cfl::Solver::AliasAnswer::kUnknown)
          ++wrong;
      } else {
        const Reply reply = svc.call(query_request(var));
        if (reply.status != Reply::Status::kOk ||
            reply.query_status != cfl::QueryStatus::kComplete ||
            reply.objects != baseline.at(var.value()))
          ++wrong;
      }
    }
  };

  std::vector<std::thread> clients;
  for (unsigned c = 0; c < kClients; ++c) clients.emplace_back(client, c);
  for (auto& t : clients) t.join();

  EXPECT_EQ(wrong.load(), 0u);
  const auto s = svc.stats();
  // Per client: 32 plain queries, 4 alias requests, 4 stats probes.
  EXPECT_EQ(s.queries_served, static_cast<std::uint64_t>(kClients) * 32);
  EXPECT_EQ(s.alias_served, static_cast<std::uint64_t>(kClients) * 4);
  EXPECT_GT(s.batches, 0u);
  EXPECT_EQ(s.shed_overload, 0u);
}

TEST(QueryService, SaveThenWarmStartTraversesFewerSteps) {
  const auto w = container_workload();
  const std::string path = testing::TempDir() + "parcfl_service_state.bin";

  // This measures the value of persisted jmp state in isolation, so the
  // pre-solve pipeline is pinned off: reduction shrinks the cold baseline
  // and the async prefilter short-circuits a nondeterministic subset of the
  // cold run's batches, both of which erode the fixed 2x margin without
  // saying anything about save/load.
  ServiceOptions cold_options = service_options(2);
  cold_options.session.reduce_graph = false;
  cold_options.session.prefilter = false;

  std::uint64_t cold_steps = 0;
  {
    QueryService cold(w.pag, cold_options);
    for (const NodeId q : w.queries)
      ASSERT_EQ(cold.call(query_request(q)).status, Reply::Status::kOk);
    cold_steps = cold.stats().engine.traversed_steps;

    Request save;
    save.verb = Verb::kSave;
    save.path = path;
    ASSERT_EQ(cold.call(save).status, Reply::Status::kOk);
  }

  ServiceOptions warm_options = cold_options;
  warm_options.session.state_path = path;
  QueryService warm(w.pag, warm_options);
  for (const NodeId q : w.queries)
    ASSERT_EQ(warm.call(query_request(q)).status, Reply::Status::kOk);
  const std::uint64_t warm_steps = warm.stats().engine.traversed_steps;

  ASSERT_GT(cold_steps, 0u);
  EXPECT_GE(cold_steps, 2 * warm_steps)
      << "cold=" << cold_steps << " warm=" << warm_steps;
  std::remove(path.c_str());
}

// ---- wire ------------------------------------------------------------------

TEST(Wire, ServeStreamSpeaksTheProtocol) {
  const auto w = container_workload();
  QueryService svc(w.pag, service_options(2));

  std::ostringstream request_text;
  request_text << "ping\n"
               << "query " << w.queries[0].value() << "\n"
               << "frobnicate\n"
               << "stats\n"
               << "quit\n"
               << "ping\n";  // never reached: quit closes the loop
  std::istringstream in(request_text.str());
  std::ostringstream out;
  const std::uint64_t handled = serve_stream(svc, in, out);
  EXPECT_EQ(handled, 5u);

  std::vector<std::string> lines;
  std::istringstream replies(out.str());
  for (std::string line; std::getline(replies, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], "ok pong");
  EXPECT_EQ(lines[1].rfind("ok ", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2].rfind("err ", 0), 0u) << lines[2];
  EXPECT_EQ(lines[3].rfind("ok {", 0), 0u) << lines[3];
  EXPECT_EQ(lines[4], "ok bye");
  EXPECT_EQ(svc.stats().protocol_errors, 1u);
}

#ifndef _WIN32
TEST(Wire, TcpServerAnswersOverLoopback) {
  const auto w = container_workload();
  QueryService svc(w.pag, service_options(2));

  std::string error;
  TcpServer server(svc, /*port=*/0, &error);
  ASSERT_TRUE(server.ok()) << error;
  ASSERT_NE(server.port(), 0u);
  std::thread acceptor([&] { server.serve(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  const std::string request =
      "ping\nquery " + std::to_string(w.queries[0].value()) + "\nquit\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  std::string received;
  char chunk[4096];
  while (std::count(received.begin(), received.end(), '\n') < 3) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    received.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.shutdown();
  acceptor.join();

  std::vector<std::string> lines;
  std::istringstream replies(received);
  for (std::string line; std::getline(replies, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u) << received;
  EXPECT_EQ(lines[0], "ok pong");
  EXPECT_EQ(lines[1].rfind("ok ", 0), 0u) << lines[1];
  EXPECT_EQ(lines[2], "ok bye");
}
#endif  // _WIN32

// ---- observability ---------------------------------------------------------

// The percentile window cases PR 5 fixed: a window of 0 or 1 samples has no
// distribution and must report 0 explicitly; 2 samples exercise the smallest
// real nearest-rank computation.
TEST(Percentile, EmptyWindowReportsZero) {
  obs::MetricsRegistry reg;
  StatsRecorder recorder(reg);
  ServiceStats s;
  recorder.snapshot(s);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p95_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
}

TEST(Percentile, SingleSampleReportsZero) {
  obs::MetricsRegistry reg;
  StatsRecorder recorder(reg);
  recorder.record_request(5.0, /*alias=*/false);
  ServiceStats s;
  recorder.snapshot(s);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p95_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
  EXPECT_EQ(s.max_ms, 5.0);  // max is still meaningful at one sample
}

TEST(Percentile, TwoSamplesUseNearestRank) {
  obs::MetricsRegistry reg;
  StatsRecorder recorder(reg);
  recorder.record_request(1.0, false);
  recorder.record_request(3.0, false);
  ServiceStats s;
  recorder.snapshot(s);
  // Nearest rank over {1, 3}: p50 -> rank ceil(0.5*2)=1 -> 1.0;
  // p95/p99 -> rank 2 -> 3.0.
  EXPECT_EQ(s.p50_ms, 1.0);
  EXPECT_EQ(s.p95_ms, 3.0);
  EXPECT_EQ(s.p99_ms, 3.0);
}

/// Minimal Prometheus exposition check shared by the metrics-op tests: every
/// line is `# HELP|TYPE ...` or `series[{labels}] value`, and every sample's
/// base name was introduced by a TYPE comment.
void expect_valid_exposition(const std::string& text) {
  std::set<std::string> typed;
  std::istringstream in(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, what, name, type;
      ls >> hash >> what >> name >> type;
      ASSERT_TRUE(what == "HELP" || what == "TYPE") << line;
      if (what == "TYPE") typed.insert(name);
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    (void)std::strtod(line.c_str() + space + 1, &end);
    ASSERT_EQ(*end, '\0') << "unparsable sample value: " << line;
    std::string name = line.substr(0, std::min(space, line.find('{')));
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0 &&
          typed.count(name.substr(0, name.size() - s.size())))
        name = name.substr(0, name.size() - s.size());
    }
    EXPECT_TRUE(typed.count(name)) << "sample without TYPE: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(QueryService, MetricsTextIsValidPrometheus) {
  const auto w = container_workload();
  QueryService svc(w.pag, service_options(2));
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_EQ(svc.call(query_request(w.queries[i])).status, Reply::Status::kOk);

  const std::string text = svc.metrics_text();
  expect_valid_exposition(text + "\n");
  // The request-plane counter reflects the served queries...
  EXPECT_NE(text.find("parcfl_queries_served_total 4"), std::string::npos)
      << text;
  // ...and the scrape refreshed the analysis-plane gauges.
  EXPECT_NE(text.find("parcfl_engine_traversed_steps"), std::string::npos);
  EXPECT_NE(text.find("parcfl_request_latency_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
}

TEST(Wire, MetricsOpReturnsCountedFrame) {
  const auto w = container_workload();
  QueryService svc(w.pag, service_options(2));

  std::ostringstream request_text;
  request_text << "query " << w.queries[0].value() << "\n"
               << "metrics\nquit\n";
  std::istringstream in(request_text.str());
  std::ostringstream out;
  EXPECT_EQ(serve_stream(svc, in, out), 3u);

  std::vector<std::string> lines;
  std::istringstream replies(out.str());
  for (std::string line; std::getline(replies, line);) lines.push_back(line);
  ASSERT_GE(lines.size(), 3u);

  // Reply 1: the query. Reply 2: `ok metrics <n>` followed by exactly n
  // payload lines. Last line: `ok bye`.
  EXPECT_EQ(lines[0].rfind("ok ", 0), 0u);
  ASSERT_EQ(lines[1].rfind("ok metrics ", 0), 0u) << lines[1];
  const std::size_t payload_lines =
      std::strtoull(lines[1].c_str() + 11, nullptr, 10);
  ASSERT_EQ(lines.size(), 2 + payload_lines + 1) << out.str();
  EXPECT_EQ(lines.back(), "ok bye");

  std::string payload;
  for (std::size_t i = 2; i < 2 + payload_lines; ++i) payload += lines[i] + "\n";
  expect_valid_exposition(payload);
}

TEST(QueryService, SlowQueryLogCapturesTraces) {
  const auto w = container_workload();
  ServiceOptions options = service_options(2);
  options.slow_query_ms = 1e-6;  // everything is "slow": the log must fill
  options.slow_log_capacity = 4;
  options.session.engine.solver.trace_level = 2;
  QueryService svc(w.pag, options);

  for (std::size_t i = 0; i < 8 && i < w.queries.size(); ++i)
    ASSERT_EQ(svc.call(query_request(w.queries[i])).status, Reply::Status::kOk);

  const auto records = svc.slow_log();
  ASSERT_FALSE(records.empty());
  EXPECT_LE(records.size(), options.slow_log_capacity);  // capped, oldest out
  for (const auto& r : records) {
    EXPECT_GE(r.latency_ms, 0.0);
    EXPECT_FALSE(r.trace_jsonl.empty());
    EXPECT_NE(r.trace_jsonl.find("\"ev\":\"query_start\""), std::string::npos);
  }
  EXPECT_EQ(svc.slow_log(2).size(), 2u);
  EXPECT_GT(svc.stats().slow_queries, 0u);

  const std::string jsonl = svc.slow_log_jsonl();
  EXPECT_NE(jsonl.find("\"latency_ms\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"trace_lines\":"), std::string::npos);

  // The wire verb frames the payload with its line count.
  std::istringstream in("slowlog 1\nquit\n");
  std::ostringstream out;
  EXPECT_EQ(serve_stream(svc, in, out), 2u);
  std::vector<std::string> lines;
  std::istringstream replies(out.str());
  for (std::string line; std::getline(replies, line);) lines.push_back(line);
  ASSERT_GE(lines.size(), 2u);
  ASSERT_EQ(lines[0].rfind("ok slowlog ", 0), 0u) << lines[0];
  const std::size_t payload_lines =
      std::strtoull(lines[0].c_str() + 11, nullptr, 10);
  EXPECT_EQ(lines.size(), 1 + payload_lines + 1);
}

TEST(QueryService, SlowLogDisabledByDefault) {
  const auto w = container_workload();
  QueryService svc(w.pag, service_options(2));
  ASSERT_EQ(svc.call(query_request(w.queries[0])).status, Reply::Status::kOk);
  EXPECT_TRUE(svc.slow_log().empty());
  EXPECT_EQ(svc.stats().slow_queries, 0u);
}

// tsan target: concurrent clients keep the engine busy while another thread
// scrapes the exposition and the slow log. Nothing here synchronises with the
// data plane beyond the registry's own contract.
TEST(QueryService, ScrapeWhileSolvingIsSafe) {
  const auto w = container_workload();
  ServiceOptions options = service_options(2);
  options.slow_query_ms = 1e-6;
  options.session.engine.solver.trace_level = 2;
  QueryService svc(w.pag, options);

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_FALSE(svc.metrics_text().empty());
      (void)svc.slow_log_jsonl(4);
      (void)svc.stats();
    }
  });

  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> served{0};
  for (int t = 0; t < 4; ++t)
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < 50; ++i) {
        const Reply r = svc.call(query_request(w.queries[i % w.queries.size()]));
        if (r.status == Reply::Status::kOk)
          served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto& c : clients) c.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GT(served.load(), 0u);
  const std::string text = svc.metrics_text();
  expect_valid_exposition(text + "\n");
}

}  // namespace
}  // namespace parcfl::service
