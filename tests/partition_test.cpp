// Partitioner tests: the PAG sharding layer under the scale-out engine
// (DESIGN.md §14, src/pag/partition.*).
//
//  * determinism — the same (graph, parts, seed) must reproduce byte-identical
//    partition map text and byte-identical serving-bundle files, because the
//    fleet launch procedure shards on one machine and ships files to workers;
//  * boundary cover — every cross-partition edge appears in exactly one
//    partition's boundary list (the dst-owner rule), so the per-partition
//    boundary sections are a disjoint cover of the cut;
//  * balance — per-partition degree-weighted load stays under the configured
//    balance cap;
//  * sub-PAG edge rules — a worker's graph is the full node table plus every
//    edge incident to an owned node plus every load/store edge, and nothing
//    else;
//  * map parser — hostile inputs (truncations, out-of-range owners, bad
//    variable flags, unknown sections) must fail with an error, never crash
//    or mis-parse; a written map round-trips losslessly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "pag/partition.hpp"
#include "synth/generator.hpp"

namespace parcfl::pag {
namespace {

Pag synth_pag(std::uint64_t seed = 33) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 14;
  cfg.library_methods = 10;
  cfg.containers = 2;
  cfg.container_use_blocks = 8;
  auto lowered = frontend::lower(synth::generate(cfg));
  return std::move(pag::collapse_assign_cycles(lowered.pag).pag);
}

/// Two identical assign-chain modules bridged by a single edge — the shape
/// the partitioner exists for. Each module: one object flowing down a chain
/// of locals.
Pag two_module_pag() {
  Pag::Builder b;
  std::vector<NodeId> chain_tail;
  for (int module = 0; module < 2; ++module) {
    const NodeId obj = b.add_object(TypeId(0), MethodId::invalid());
    NodeId prev = b.add_local(TypeId(0), MethodId::invalid());
    b.new_edge(prev, obj);
    for (int i = 0; i < 6; ++i) {
      const NodeId next = b.add_local(TypeId(0), MethodId::invalid());
      b.assign_local(next, prev);
      prev = next;
    }
    chain_tail.push_back(prev);
  }
  b.assign_local(chain_tail[1], chain_tail[0]);  // the one bridge
  b.set_counts(1, 1, 1, 1);
  return std::move(b).finalize();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- determinism -----------------------------------------------------------

TEST(PartitionDeterminism, SameSeedSameOwners) {
  const Pag pag = synth_pag();
  PartitionOptions opt;
  opt.parts = 4;
  opt.seed = 7;
  const PartitionMap a = partition_pag(pag, opt);
  const PartitionMap b = partition_pag(pag, opt);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.cross_edges, b.cross_edges);
  EXPECT_EQ(write_partition_map_string(pag, a),
            write_partition_map_string(pag, b));
}

TEST(PartitionDeterminism, SameSeedByteIdenticalFiles) {
  const Pag pag = synth_pag();
  PartitionOptions opt;
  opt.parts = 3;
  opt.seed = 11;
  const PartitionMap map = partition_pag(pag, opt);

  const std::string dir = testing::TempDir();
  std::string error;
  ASSERT_TRUE(write_partition_files(pag, map, dir + "/det_a", &error)) << error;
  ASSERT_TRUE(write_partition_files(pag, map, dir + "/det_b", &error)) << error;
  for (std::uint32_t p = 0; p < opt.parts; ++p) {
    const std::string suffix = ".p" + std::to_string(p) + ".pag";
    const std::string a = slurp(dir + "/det_a" + suffix);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, slurp(dir + "/det_b" + suffix)) << suffix;
  }
  const std::string map_a = slurp(dir + "/det_a.map");
  ASSERT_FALSE(map_a.empty());
  EXPECT_EQ(map_a, slurp(dir + "/det_b.map"));
}

TEST(PartitionDeterminism, SeedsProduceValidAssignments) {
  const Pag pag = synth_pag();
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 99ull}) {
    PartitionOptions opt;
    opt.parts = 2;
    opt.seed = seed;
    const PartitionMap map = partition_pag(pag, opt);
    ASSERT_EQ(map.owner.size(), pag.node_count());
    for (const std::uint32_t o : map.owner) EXPECT_LT(o, opt.parts);
    EXPECT_EQ(map.seed, seed);
    EXPECT_EQ(map.parts, opt.parts);
  }
}

// ---- boundary cover --------------------------------------------------------

std::uint64_t edge_key(const Pag& pag, const Edge& e) {
  // Edge identity by position in the full graph's edge order (the order
  // boundary_edges preserves): find is O(E) but graphs here are small.
  for (std::uint32_t i = 0; i < pag.edge_count(); ++i) {
    const Edge& f = pag.edges()[i];
    if (f.kind == e.kind && f.src == e.src && f.dst == e.dst && f.aux == e.aux)
      return i;
  }
  ADD_FAILURE() << "boundary edge not present in the full graph";
  return ~0ull;
}

TEST(PartitionBoundary, DisjointCoverOfTheCut) {
  const Pag pag = synth_pag();
  PartitionOptions opt;
  opt.parts = 4;
  opt.seed = 5;
  const PartitionMap map = partition_pag(pag, opt);

  std::set<std::uint64_t> covered;
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < opt.parts; ++p) {
    for (const Edge& e : boundary_edges(pag, map, p)) {
      // dst-owner rule: the boundary list of p holds edges *into* p only.
      EXPECT_EQ(map.owner[e.dst.value()], p);
      EXPECT_NE(map.owner[e.src.value()], map.owner[e.dst.value()]);
      // Exactly-once: no edge may appear in two partitions' lists.
      EXPECT_TRUE(covered.insert(edge_key(pag, e)).second);
      ++total;
    }
  }
  EXPECT_EQ(total, map.cross_edges);

  // The union covers the whole cut: recount independently.
  std::uint64_t cut = 0;
  for (const Edge& e : pag.edges())
    if (map.owner[e.src.value()] != map.owner[e.dst.value()]) ++cut;
  EXPECT_EQ(cut, map.cross_edges);
}

// ---- balance ---------------------------------------------------------------

TEST(PartitionBalance, WeightedLoadUnderCap) {
  const Pag pag = synth_pag();
  PartitionOptions opt;
  opt.parts = 4;
  opt.seed = 3;
  const PartitionMap map = partition_pag(pag, opt);

  std::vector<std::uint64_t> deg(pag.node_count(), 0);
  for (const Edge& e : pag.edges()) {
    ++deg[e.src.value()];
    ++deg[e.dst.value()];
  }
  std::uint64_t total = 0;
  std::vector<std::uint64_t> load(opt.parts, 0);
  for (std::uint32_t v = 0; v < pag.node_count(); ++v) {
    load[map.owner[v]] += 1 + deg[v];
    total += 1 + deg[v];
  }
  // Matches the partitioner's cap, plus the largest single component's
  // indivisibility slack: a component cannot be split, so when nothing fits a
  // spill to the least-loaded partition may exceed the cap by one component.
  const auto cap = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(total) * opt.balance / opt.parts));
  for (std::uint32_t p = 0; p < opt.parts; ++p)
    EXPECT_LE(load[p], cap + total / 4) << "partition " << p;
  // And the cap is not vacuous: no partition is empty on this graph.
  for (std::uint32_t p = 0; p < opt.parts; ++p)
    EXPECT_GT(load[p], 0u) << "partition " << p;
}

TEST(PartitionBalance, ModularGraphRecoversModules) {
  const Pag pag = two_module_pag();
  PartitionOptions opt;
  opt.parts = 2;
  opt.seed = 1;
  const PartitionMap map = partition_pag(pag, opt);
  // Two identical bridged chains: the only cut the objective should pay for
  // is the bridge itself.
  EXPECT_EQ(map.cross_edges, 1u);
  // Each module lands whole: nodes 0..7 share an owner, nodes 8..15 share
  // the other.
  for (std::uint32_t v = 1; v < 8; ++v) EXPECT_EQ(map.owner[v], map.owner[0]);
  for (std::uint32_t v = 9; v < 16; ++v) EXPECT_EQ(map.owner[v], map.owner[8]);
  EXPECT_NE(map.owner[0], map.owner[8]);
}

TEST(PartitionBalance, SinglePartitionIsTrivial) {
  const Pag pag = two_module_pag();
  PartitionOptions opt;
  opt.parts = 1;
  const PartitionMap map = partition_pag(pag, opt);
  EXPECT_EQ(map.cross_edges, 0u);
  for (const std::uint32_t o : map.owner) EXPECT_EQ(o, 0u);
}

// ---- sub-PAG edge rules ----------------------------------------------------

std::multiset<std::tuple<int, std::uint32_t, std::uint32_t, std::uint32_t>>
edge_multiset(const Pag& pag) {
  std::multiset<std::tuple<int, std::uint32_t, std::uint32_t, std::uint32_t>> s;
  for (const Edge& e : pag.edges())
    s.emplace(static_cast<int>(e.kind), e.dst.value(), e.src.value(), e.aux);
  return s;
}

TEST(SubPag, ExactlyTheOwnedPlusHeapEdges) {
  const Pag pag = synth_pag();
  PartitionOptions opt;
  opt.parts = 3;
  opt.seed = 2;
  const PartitionMap map = partition_pag(pag, opt);

  for (std::uint32_t p = 0; p < opt.parts; ++p) {
    const Pag sub = make_sub_pag(pag, map, p);
    // Global node ids stay valid: the node table is never filtered.
    ASSERT_EQ(sub.node_count(), pag.node_count());
    for (std::uint32_t v = 0; v < pag.node_count(); ++v)
      EXPECT_EQ(sub.kind(NodeId(v)), pag.kind(NodeId(v)));

    // Expected edges: heap edges always, others iff incident to an owned
    // node. make_sub_pag builds with dedupe on, so compare deduplicated sets.
    std::multiset<std::tuple<int, std::uint32_t, std::uint32_t, std::uint32_t>>
        expected;
    for (const Edge& e : pag.edges()) {
      const bool heap =
          e.kind == EdgeKind::kLoad || e.kind == EdgeKind::kStore;
      if (heap || map.owner[e.src.value()] == p ||
          map.owner[e.dst.value()] == p)
        expected.emplace(static_cast<int>(e.kind), e.dst.value(),
                         e.src.value(), e.aux);
    }
    std::set<std::tuple<int, std::uint32_t, std::uint32_t, std::uint32_t>>
        expected_dedup(expected.begin(), expected.end());
    const auto actual = edge_multiset(sub);
    EXPECT_TRUE(std::equal(expected_dedup.begin(), expected_dedup.end(),
                           actual.begin(), actual.end()))
        << "partition " << p << ": " << actual.size() << " edges vs "
        << expected_dedup.size() << " expected";
    EXPECT_EQ(sub.field_count(), pag.field_count());
    EXPECT_EQ(sub.call_site_count(), pag.call_site_count());
  }
}

// ---- map text format -------------------------------------------------------

TEST(PartitionMapText, RoundTripsLosslessly) {
  const Pag pag = synth_pag();
  PartitionOptions opt;
  opt.parts = 4;
  opt.seed = 13;
  const PartitionMap map = partition_pag(pag, opt);

  std::string error;
  const std::string text = write_partition_map_string(pag, map);
  const auto read = read_partition_map_string(text, &error);
  ASSERT_TRUE(read.has_value()) << error;
  EXPECT_EQ(read->parts, map.parts);
  EXPECT_EQ(read->seed, map.seed);
  EXPECT_EQ(read->owner, map.owner);
  EXPECT_EQ(read->cross_edges, map.cross_edges);
  // The v section mirrors the graph's variable-node flags.
  ASSERT_EQ(read->variables.size(), pag.node_count());
  for (std::uint32_t v = 0; v < pag.node_count(); ++v)
    EXPECT_EQ(read->variables[v] != 0, pag.is_variable(NodeId(v)));
}

TEST(PartitionMapText, FileRoundTrip) {
  const Pag pag = two_module_pag();
  PartitionOptions opt;
  opt.parts = 2;
  const PartitionMap map = partition_pag(pag, opt);
  const std::string path = testing::TempDir() + "/roundtrip.map";
  std::string error;
  ASSERT_TRUE(write_partition_map_file(path, pag, map, &error)) << error;
  const auto read = read_partition_map_file(path, &error);
  ASSERT_TRUE(read.has_value()) << error;
  EXPECT_EQ(read->owner, map.owner);
}

TEST(PartitionMapText, RejectsHostileInputs) {
  const Pag pag = two_module_pag();
  PartitionOptions opt;
  opt.parts = 2;
  const PartitionMap map = partition_pag(pag, opt);
  const std::string good = write_partition_map_string(pag, map);

  const auto rejects = [&](const std::string& text, const char* label) {
    std::string error;
    EXPECT_FALSE(read_partition_map_string(text, &error).has_value()) << label;
    EXPECT_FALSE(error.empty()) << label;
  };

  rejects("", "empty input");
  rejects("parcfl-part 2\n", "wrong version");
  rejects("not-a-map 1\n", "bad magic");
  rejects("parcfl-part 1\n", "missing header");
  rejects("parcfl-part 1\nparts 2 nodes\n", "truncated header");
  rejects("parcfl-part 1\nparts 0 nodes 4 seed 1 cross 0\nend\n", "zero parts");
  rejects("parcfl-part 1\nparts 2 nodes 9999999999 seed 1 cross 0\nend\n",
          "node count too large");
  rejects("parcfl-part 1\nparts 2 nodes 4 seed 1 cross 0\nend\n",
          "truncated owners");
  rejects("parcfl-part 1\nparts 2 nodes 4 seed 1 cross 0\no 0 1 7 0\nend\n",
          "owner out of range");
  rejects("parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 1 0\nend\n",
          "extra owners");
  rejects("parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 x\nend\n",
          "bad owner value");
  rejects("parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\nq 0 1\nend\n",
          "bad owner tag");
  rejects("parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 1\nv 1 2\nend\n",
          "variable flag out of range");
  rejects("parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 1\nv 1 0 1\nend\n",
          "extra variable flags");
  rejects("parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 1\nv 1\nend\n",
          "truncated variable flags");
  rejects("parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 1\nwhat 3\nend\n",
          "unknown section");
  rejects("parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 1\n",
          "missing end");
  rejects(
      "parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 1\nboundary 5 0\n"
      "end\n",
      "boundary partition out of range");
  rejects(
      "parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 1\nboundary 0 1\n"
      "e assign 9 0 0\nend\n",
      "boundary edge node out of range");
  // Truncating the good text anywhere before `end` must fail, never crash.
  for (std::size_t cut = 0; cut + 4 < good.size(); cut += 7) {
    std::string error;
    const auto r = read_partition_map_string(good.substr(0, cut), &error);
    EXPECT_FALSE(r.has_value()) << "prefix of " << cut;
  }
}

TEST(PartitionMapText, AcceptsMapWithoutVariableSection) {
  // Maps written before the v section existed must still parse; readers then
  // see empty variables (meaning "unknown").
  std::string error;
  const auto r = read_partition_map_string(
      "parcfl-part 1\nparts 2 nodes 2 seed 1 cross 0\no 0 1\nend\n", &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_TRUE(r->variables.empty());
  EXPECT_EQ(r->owner, (std::vector<std::uint32_t>{0, 1}));
}

}  // namespace
}  // namespace parcfl::pag
