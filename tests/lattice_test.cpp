// Option-lattice property suite: the solver's sensitivity knobs form a
// precision lattice, checked pairwise on random graphs:
//
//   field-insensitive (LFT)  ⊆  exact (LPT)  ⊆  context-insensitive (LFS)
//                                exact        ⊆  field-approximated
//   data sharing / taus / warm stores never move any point in the lattice.
//
// Each relation is the formal statement of a paper claim: LFT ⊆ LPT because
// eq. (1) is eq. (2) minus the heap production; LPT ⊆ LFS because RCS only
// filters paths; approximation ⊇ exact because "match any same-field store"
// relaxes the alias test.

#include <gtest/gtest.h>

#include <algorithm>

#include "cfl/jmp_store.hpp"
#include "cfl/solver.hpp"
#include "test_util.hpp"

namespace parcfl::cfl {
namespace {

using pag::NodeId;

SolverOptions opts(bool cs, bool fs, bool approx) {
  SolverOptions o;
  o.budget = 20'000'000;
  o.context_sensitive = cs;
  o.field_sensitive = fs;
  o.field_approximation = approx;
  o.max_fixpoint_iters = 64;
  return o;
}

/// `store` entries reference contexts interned in `contexts`; when sharing,
/// the same table must be passed for the store's whole lifetime.
std::vector<std::uint32_t> pts(const pag::Pag& pag, const SolverOptions& o,
                               NodeId v, JmpStore* store = nullptr,
                               ContextTable* contexts = nullptr) {
  ContextTable own;
  ContextTable& table = contexts != nullptr ? *contexts : own;
  SolverOptions local = o;
  if (store != nullptr) local.data_sharing = true;
  Solver solver(pag, table, store, local);
  std::vector<std::uint32_t> out;
  const auto r = solver.points_to(v);
  EXPECT_EQ(r.status, QueryStatus::kComplete);
  for (const NodeId n : r.nodes()) out.push_back(n.value());
  return out;
}

bool subset(const std::vector<std::uint32_t>& a,
            const std::vector<std::uint32_t>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

class LatticeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatticeTest, SensitivityLatticeHolds) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 21'000;
  cfg.heap_edge_pairs = 3;
  cfg.assign_edges = 5;
  const auto pag = test::random_layered_pag(cfg);

  for (const NodeId v : test::all_variables(pag)) {
    const auto lft = pts(pag, opts(true, false, false), v);   // no heap at all
    const auto lpt = pts(pag, opts(true, true, false), v);    // the paper's LPT
    const auto lfs = pts(pag, opts(false, true, false), v);   // no RCS filter
    const auto approx = pts(pag, opts(true, true, true), v);  // field approx

    EXPECT_TRUE(subset(lft, lpt)) << "LFT ⊄ LPT at " << v.value();
    EXPECT_TRUE(subset(lpt, lfs)) << "LPT ⊄ LFS at " << v.value();
    EXPECT_TRUE(subset(lpt, approx)) << "LPT ⊄ approx at " << v.value();
    // The degenerate corner: CI + field-insensitive contains LFT too.
    const auto lft_ci = pts(pag, opts(false, false, false), v);
    EXPECT_TRUE(subset(lft, lft_ci));
    EXPECT_TRUE(subset(lft_ci, lfs));
  }
}

TEST_P(LatticeTest, SharingIsInvariantAtEveryLatticePoint) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 22'000;
  cfg.heap_edge_pairs = 3;
  const auto pag = test::random_layered_pag(cfg);

  const bool flags[][2] = {{true, true}, {false, true}, {true, false}};
  for (const auto& [cs, fs] : flags) {
    SolverOptions o = opts(cs, fs, false);
    o.tau_finished = 0;
    o.tau_unfinished = 0;

    JmpStore store;
    ContextTable contexts;  // must outlive every use of `store`
    // Warm the store over the whole batch, then compare each answer.
    {
      SolverOptions warm = o;
      warm.data_sharing = true;
      Solver solver(pag, contexts, &store, warm);
      for (const NodeId v : test::all_variables(pag)) (void)solver.points_to(v);
    }
    for (const NodeId v : test::all_variables(pag)) {
      const auto plain = pts(pag, o, v);
      const auto shared = pts(pag, o, v, &store, &contexts);
      EXPECT_EQ(plain, shared)
          << "cs=" << cs << " fs=" << fs << " var " << v.value();
    }
  }
}

TEST_P(LatticeTest, BudgetMonotonicity) {
  // A larger budget never yields a smaller answer (sets only grow with more
  // exploration), and completion at budget B implies the identical answer at
  // every larger budget.
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 23'000;
  const auto pag = test::random_layered_pag(cfg);

  for (const NodeId v : test::all_variables(pag)) {
    std::vector<std::uint32_t> prev;
    bool prev_complete = false;
    for (const std::uint64_t budget : {20ull, 200ull, 2000ull, 20'000'000ull}) {
      ContextTable contexts;
      SolverOptions o = opts(true, true, false);
      o.budget = budget;
      Solver solver(pag, contexts, nullptr, o);
      const auto r = solver.points_to(v);
      std::vector<std::uint32_t> cur;
      for (const NodeId n : r.nodes()) cur.push_back(n.value());
      if (prev_complete) {
        EXPECT_EQ(cur, prev) << "answer changed after completion, var "
                             << v.value() << " budget " << budget;
      } else if (!prev.empty()) {
        // Partial answers are sound and deterministic: more budget explores
        // a superset prefix of the same traversal.
        EXPECT_TRUE(subset(prev, cur)) << "partial answer lost facts, var "
                                       << v.value() << " budget " << budget;
      }
      prev = cur;
      prev_complete = r.status == QueryStatus::kComplete;
    }
    EXPECT_TRUE(prev_complete) << "var " << v.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeTest, ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace parcfl::cfl
