// Persistence tests: sharing-state round-trips, fingerprint guarding,
// context remapping into non-empty tables, and the warm-start property
// (a reloaded store eliminates traversal work on the next batch).

#include <gtest/gtest.h>

#include <sstream>

#include "cfl/persist.hpp"
#include "cfl/solver.hpp"
#include "pag/collapse.hpp"
#include "frontend/lower.hpp"
#include "synth/generator.hpp"
#include "test_util.hpp"

namespace parcfl::cfl {
namespace {

using pag::NodeId;

struct SharedRun {
  pag::Pag pag;
  std::vector<NodeId> queries;
};

SharedRun heapy_workload(std::uint64_t seed = 31) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 12;
  cfg.library_methods = 12;
  cfg.containers = 3;
  cfg.container_use_blocks = 12;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return SharedRun{std::move(collapsed.pag), std::move(queries)};
}

SolverOptions sharing_options() {
  SolverOptions o;
  o.budget = 1'000'000;
  o.data_sharing = true;
  o.tau_finished = 5;
  o.tau_unfinished = 50;
  return o;
}

TEST(Persist, FingerprintDistinguishesGraphs) {
  const auto a = heapy_workload(1);
  const auto b = heapy_workload(2);
  EXPECT_NE(pag_fingerprint(a.pag), pag_fingerprint(b.pag));
  EXPECT_EQ(pag_fingerprint(a.pag), pag_fingerprint(heapy_workload(1).pag));
}

TEST(Persist, RoundTripPreservesEntries) {
  const auto w = heapy_workload();
  ContextTable contexts;
  JmpStore store;
  Solver solver(w.pag, contexts, &store, sharing_options());
  for (const NodeId q : w.queries) (void)solver.points_to(q);
  ASSERT_GT(store.entry_count(), 0u);

  std::ostringstream out;
  save_sharing_state(out, w.pag, contexts, store);

  ContextTable contexts2;
  JmpStore store2;
  std::istringstream in(out.str());
  std::string error;
  ASSERT_TRUE(load_sharing_state(in, w.pag, contexts2, store2, &error)) << error;

  EXPECT_EQ(store2.entry_count(), store.entry_count());
  const auto s1 = store.stats();
  const auto s2 = store2.stats();
  EXPECT_EQ(s1.finished_edges, s2.finished_edges);
  EXPECT_EQ(s1.unfinished_edges, s2.unfinished_edges);

  // Saving the reloaded state again is byte-identical when the context
  // tables enumerate identically (fresh table, same interning order).
  std::ostringstream out2;
  save_sharing_state(out2, w.pag, contexts2, store2);
  // Entry iteration order may differ between stores; compare sorted lines.
  auto sorted_lines = [](const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(out.str()), sorted_lines(out2.str()));
}

TEST(Persist, WarmStartEliminatesTraversalWork) {
  const auto w = heapy_workload();

  // Cold run, saving state.
  std::ostringstream state;
  std::uint64_t cold_traversed = 0;
  {
    ContextTable contexts;
    JmpStore store;
    Solver solver(w.pag, contexts, &store, sharing_options());
    for (const NodeId q : w.queries) (void)solver.points_to(q);
    cold_traversed = solver.counters().traversed_steps;
    save_sharing_state(state, w.pag, contexts, store);
  }

  // Warm run: loads the state first.
  ContextTable contexts;
  JmpStore store;
  std::istringstream in(state.str());
  ASSERT_TRUE(load_sharing_state(in, w.pag, contexts, store));
  Solver solver(w.pag, contexts, &store, sharing_options());
  std::vector<std::vector<NodeId>> warm_answers;
  for (const NodeId q : w.queries) warm_answers.push_back(solver.points_to(q).nodes());
  EXPECT_LT(solver.counters().traversed_steps, cold_traversed);
  EXPECT_GT(solver.counters().jmps_taken, 0u);

  // Warm answers equal cold answers.
  ContextTable c3;
  Solver plain(w.pag, c3, nullptr, SolverOptions{.budget = 1'000'000});
  for (std::size_t i = 0; i < w.queries.size(); ++i)
    EXPECT_EQ(warm_answers[i], plain.points_to(w.queries[i]).nodes())
        << "query " << w.queries[i].value();
}

TEST(Persist, RejectsWrongGraph) {
  const auto w1 = heapy_workload(5);
  const auto w2 = heapy_workload(6);
  ContextTable contexts;
  JmpStore store;
  Solver solver(w1.pag, contexts, &store, sharing_options());
  for (const NodeId q : w1.queries) (void)solver.points_to(q);

  std::ostringstream out;
  save_sharing_state(out, w1.pag, contexts, store);

  ContextTable c2;
  JmpStore s2;
  std::istringstream in(out.str());
  std::string error;
  EXPECT_FALSE(load_sharing_state(in, w2.pag, c2, s2, &error));
  EXPECT_NE(error.find("different PAG"), std::string::npos);
}

TEST(Persist, RejectsMalformedInput) {
  const auto w = heapy_workload();
  ContextTable contexts;
  JmpStore store;
  std::string error;

  std::istringstream bad1("nonsense");
  EXPECT_FALSE(load_sharing_state(bad1, w.pag, contexts, store, &error));

  std::istringstream bad2("parcfl-state 1\npag 1 1 12345\n");
  EXPECT_FALSE(load_sharing_state(bad2, w.pag, contexts, store, &error));

  std::ostringstream good;
  save_sharing_state(good, w.pag, contexts, store);
  std::string text = good.str() + "garbage line\n";
  std::istringstream bad3(text);
  EXPECT_FALSE(load_sharing_state(bad3, w.pag, contexts, store, &error));
}

TEST(Persist, LoadIntoNonEmptyContextTableRemaps) {
  const auto w = heapy_workload();
  std::ostringstream state;
  {
    ContextTable contexts;
    JmpStore store;
    Solver solver(w.pag, contexts, &store, sharing_options());
    for (const NodeId q : w.queries) (void)solver.points_to(q);
    save_sharing_state(state, w.pag, contexts, store);
  }

  // Pre-populate the receiving table with unrelated contexts so the saved
  // ids cannot line up; loading must still produce a usable store.
  ContextTable contexts;
  for (std::uint32_t i = 0; i < 100; ++i)
    (void)contexts.push(ContextTable::empty(), pag::CallSiteId(1000 + i));

  JmpStore store;
  std::istringstream in(state.str());
  std::string error;
  ASSERT_TRUE(load_sharing_state(in, w.pag, contexts, store, &error)) << error;

  Solver solver(w.pag, contexts, &store, sharing_options());
  for (const NodeId q : w.queries) (void)solver.points_to(q);
  EXPECT_GT(solver.counters().jmps_taken, 0u);
}

}  // namespace
}  // namespace parcfl::cfl
