// Property-based validation of the demand solver against two independent
// ground truths, over many random layered PAGs (see test_util.hpp for why
// layering bounds realisable context nesting):
//
//  1. ExactOracle (configuration-space fixpoint of LPT).
//  2. Andersen's analysis — must equal the demand solver (and the oracle)
//     exactly in the context-insensitive projection.
//  3. brute_force_flows_to (path enumeration + Earley on LFS) cross-checks
//     the ExactOracle itself on the smallest graphs.
//
// Also checked per graph: context-sensitive ⊆ context-insensitive results,
// and data sharing never changes any answer (budget semantics preserved).

#include <gtest/gtest.h>

#include <algorithm>

#include "andersen/andersen.hpp"
#include "cfl/jmp_store.hpp"
#include "cfl/solver.hpp"
#include "oracle/earley.hpp"
#include "oracle/oracle.hpp"
#include "test_util.hpp"

namespace parcfl {
namespace {

using cfl::ContextTable;
using cfl::QueryStatus;
using cfl::Solver;
using cfl::SolverOptions;
using pag::NodeId;
using test::RandomPagConfig;

SolverOptions opts(bool cs) {
  SolverOptions o;
  o.budget = 50'000'000;
  o.context_sensitive = cs;
  o.max_fixpoint_iters = 64;
  return o;
}

std::vector<std::uint32_t> solver_pts(Solver& solver, NodeId v) {
  const auto r = solver.points_to(v);
  EXPECT_EQ(r.status, QueryStatus::kComplete);
  std::vector<std::uint32_t> out;
  for (const NodeId n : r.nodes()) out.push_back(n.value());
  return out;
}

std::vector<std::uint32_t> solver_flows(Solver& solver, NodeId o) {
  const auto r = solver.flows_to(o);
  EXPECT_EQ(r.status, QueryStatus::kComplete);
  std::vector<std::uint32_t> out;
  for (const NodeId n : r.nodes()) out.push_back(n.value());
  return out;
}

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyTest, SolverMatchesExactOracleContextSensitive) {
  RandomPagConfig cfg;
  cfg.seed = GetParam();
  const auto pag = test::random_layered_pag(cfg);

  oracle::OracleOptions oo;
  const oracle::ExactOracle exact(pag, oo);

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, opts(true));

  for (const NodeId v : test::all_variables(pag))
    EXPECT_EQ(solver_pts(solver, v), exact.points_to(v))
        << "seed " << cfg.seed << " var " << v.value();
  for (const NodeId o : test::all_objects(pag))
    EXPECT_EQ(solver_flows(solver, o), exact.flows_to(o))
        << "seed " << cfg.seed << " obj " << o.value();
}

TEST_P(PropertyTest, SolverMatchesExactOracleContextInsensitive) {
  RandomPagConfig cfg;
  cfg.seed = GetParam() + 1000;
  const auto pag = test::random_layered_pag(cfg);

  oracle::OracleOptions oo;
  oo.context_sensitive = false;
  const oracle::ExactOracle exact(pag, oo);

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, opts(false));

  for (const NodeId v : test::all_variables(pag))
    EXPECT_EQ(solver_pts(solver, v), exact.points_to(v))
        << "seed " << cfg.seed << " var " << v.value();
}

TEST_P(PropertyTest, ContextInsensitiveEqualsAndersen) {
  RandomPagConfig cfg;
  cfg.seed = GetParam() + 2000;
  cfg.assign_edges = 6;
  cfg.heap_edge_pairs = 3;
  const auto pag = test::random_layered_pag(cfg);

  const auto andersen = andersen::solve(pag);
  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, opts(false));

  for (const NodeId v : test::all_variables(pag)) {
    const auto got = solver_pts(solver, v);
    const auto want = andersen.points_to(v);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << "seed " << cfg.seed << " var " << v.value();
  }
}

TEST_P(PropertyTest, ContextSensitiveIsSubsetOfInsensitive) {
  RandomPagConfig cfg;
  cfg.seed = GetParam() + 3000;
  const auto pag = test::random_layered_pag(cfg);

  ContextTable c1, c2;
  Solver cs(pag, c1, nullptr, opts(true));
  Solver ci(pag, c2, nullptr, opts(false));

  for (const NodeId v : test::all_variables(pag)) {
    const auto a = solver_pts(cs, v);
    const auto b = solver_pts(ci, v);
    EXPECT_TRUE(std::includes(b.begin(), b.end(), a.begin(), a.end()))
        << "seed " << cfg.seed << " var " << v.value();
  }
}

TEST_P(PropertyTest, DataSharingPreservesAnswers) {
  RandomPagConfig cfg;
  cfg.seed = GetParam() + 4000;
  cfg.heap_edge_pairs = 4;
  const auto pag = test::random_layered_pag(cfg);

  ContextTable c1, c2;
  Solver plain(pag, c1, nullptr, opts(true));

  SolverOptions sharing_opts = opts(true);
  sharing_opts.data_sharing = true;
  sharing_opts.tau_finished = 0;  // share aggressively to stress the machinery
  cfl::JmpStore store;
  Solver sharing(pag, c2, &store, sharing_opts);

  // Run the batch twice through the sharing solver so later queries actually
  // consume the jmp edges added by earlier ones.
  const auto vars = test::all_variables(pag);
  for (const NodeId v : vars) (void)sharing.points_to(v);
  for (const NodeId v : vars) {
    EXPECT_EQ(solver_pts(sharing, v), solver_pts(plain, v))
        << "seed " << cfg.seed << " var " << v.value();
  }
  // With zero taus on a heap-bearing graph, some jmp edges should exist.
  // (Not asserted per-seed: some graphs have no completed heap match.)
}

TEST_P(PropertyTest, BruteForceCrossChecksExactOracle) {
  RandomPagConfig cfg;  // keep tiny: path enumeration is exponential
  cfg.seed = GetParam() + 5000;
  cfg.layers = 2;
  cfg.vars_per_layer = 2;
  cfg.objects = 2;
  cfg.assign_edges = 2;
  cfg.param_ret_edges = 2;
  cfg.heap_edge_pairs = 1;
  cfg.globals = 1;
  const auto pag = test::random_layered_pag(cfg);

  const oracle::ExactOracle exact(pag);
  oracle::BruteForceOptions bf;
  bf.max_path_length = 10;
  bf.max_paths = 2'000'000;

  for (const NodeId o : test::all_objects(pag)) {
    const auto brute = oracle::brute_force_flows_to(pag, o, bf);
    const auto fix = exact.flows_to(o);
    // Soundness of the fixpoint oracle: everything a short path witnesses is
    // in the fixpoint (brute ⊆ fix), always.
    EXPECT_TRUE(
        std::includes(fix.begin(), fix.end(), brute.vars.begin(), brute.vars.end()))
        << "seed " << cfg.seed << " obj " << o.value();
    // Precision: when the enumeration completed, every fixpoint fact must be
    // witnessed by a path of bounded length (cyclic graphs may truncate).
    if (!brute.truncated)
      EXPECT_EQ(brute.vars, fix) << "seed " << cfg.seed << " obj " << o.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range<std::uint64_t>(1, 41));

// Larger graphs, fewer seeds: stress the fixpoint machinery harder.
class BigPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigPropertyTest, SolverMatchesExactOracleOnDenserGraphs) {
  RandomPagConfig cfg;
  cfg.seed = GetParam();
  cfg.layers = 4;
  cfg.vars_per_layer = 4;
  cfg.objects = 5;
  cfg.assign_edges = 8;
  cfg.param_ret_edges = 8;
  cfg.heap_edge_pairs = 5;
  cfg.fields = 2;
  cfg.globals = 2;
  const auto pag = test::random_layered_pag(cfg);

  const oracle::ExactOracle exact(pag);
  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, opts(true));

  for (const NodeId v : test::all_variables(pag))
    EXPECT_EQ(solver_pts(solver, v), exact.points_to(v))
        << "seed " << cfg.seed << " var " << v.value();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace parcfl
