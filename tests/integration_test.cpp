// End-to-end integration: full pipeline (generate -> lower -> collapse ->
// schedule -> parallel engine -> clients) on a mid-size workload, with the
// demand results spot-checked against Andersen and the text formats
// round-tripped along the way. This is the closest test to how the bench
// harnesses and a downstream user drive the library.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "parcfl.hpp"

namespace parcfl {
namespace {

using pag::NodeId;

TEST(Integration, FullPipelineEndToEnd) {
  // 1. Generate a container-heavy program and lower it.
  synth::GeneratorConfig cfg;
  cfg.seed = 20140901;  // ICPP'14
  cfg.app_methods = 25;
  cfg.library_methods = 35;
  cfg.containers = 4;
  cfg.container_use_blocks = 20;
  cfg.cast_weight = 0.05;
  const auto program = synth::generate(cfg);
  const auto lowered = frontend::lower(program);
  ASSERT_TRUE(pag::is_well_formed(lowered.pag));

  // 2. The PAG round-trips through the text format.
  const std::string text = pag::write_pag_string(lowered.pag);
  std::string io_error;
  const auto reparsed = pag::read_pag_string(text, &io_error);
  ASSERT_TRUE(reparsed.has_value()) << io_error;
  ASSERT_EQ(pag::write_pag_string(*reparsed), text);

  // 3. Collapse cycles, translate queries.
  const auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  ASSERT_GT(queries.size(), 100u);

  // 4. Parallel batch with scheduling + sharing, collecting results.
  cfl::EngineOptions options;
  options.mode = cfl::Mode::kDataSharingScheduling;
  options.threads = 8;
  options.solver.budget = 2'000'000;
  options.solver.tau_finished = 10;
  options.collect_objects = true;

  cfl::ContextTable contexts;
  cfl::JmpStore store;
  cfl::Engine engine(collapsed.pag, options);
  const auto result = engine.run(queries, contexts, store);
  EXPECT_EQ(result.totals.queries, queries.size());
  for (const auto& qo : result.outcomes)
    EXPECT_EQ(qo.status, cfl::QueryStatus::kComplete);

  // 5. Spot-check a sample against Andersen (CS ⊆ CI refinement).
  const auto andersen = andersen::solve(collapsed.pag);
  const auto table = clients::PointsToTable::from_engine_result(result);
  std::size_t strictly_more_precise = 0;
  for (std::size_t i = 0; i < queries.size(); i += 7) {
    const NodeId v = queries[i];
    const auto got = table.points_to(v);
    const auto ci = andersen.points_to(v);
    for (const NodeId o : got)
      ASSERT_TRUE(std::binary_search(ci.begin(), ci.end(), o.value()))
          << "CS result exceeds Andersen at var " << v.value();
    if (got.size() < ci.size()) ++strictly_more_precise;
  }
  // Context-sensitivity must actually buy precision somewhere on a
  // container-heavy workload.
  EXPECT_GT(strictly_more_precise, 0u);

  // 6. Clients run over the same table.
  const auto classes = table.alias_classes();
  std::size_t member_total = 0;
  for (const auto& c : classes) member_total += c.size();
  EXPECT_EQ(member_total, queries.size());

  const auto casts = clients::check_casts(program, lowered, collapsed.pag, table,
                                          collapsed.representative);
  EXPECT_EQ(casts.size(), lowered.casts.size());

  const clients::ModRefAnalysis modref(collapsed.pag, table);
  (void)modref;

  // 7. Sharing state persists and warm-starts an equivalent second batch.
  std::ostringstream state;
  cfl::save_sharing_state(state, collapsed.pag, contexts, store);

  cfl::ContextTable warm_contexts;
  cfl::JmpStore warm_store;
  std::istringstream in(state.str());
  std::string persist_error;
  ASSERT_TRUE(cfl::load_sharing_state(in, collapsed.pag, warm_contexts,
                                      warm_store, &persist_error))
      << persist_error;

  const auto warm = engine.run(queries, warm_contexts, warm_store);
  EXPECT_LT(warm.totals.traversed_steps, result.totals.traversed_steps);
  const auto warm_table = clients::PointsToTable::from_engine_result(warm);
  for (std::size_t i = 0; i < queries.size(); i += 11) {
    const auto a = table.points_to(queries[i]);
    const auto b = warm_table.points_to(queries[i]);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "warm-start changed the answer at var " << queries[i].value();
  }
}

TEST(Integration, SequentialAndParallelProduceIdenticalTables) {
  synth::GeneratorConfig cfg;
  cfg.seed = 4242;
  cfg.app_methods = 15;
  cfg.library_methods = 20;
  const auto lowered = frontend::lower(synth::generate(cfg));
  const auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());

  auto run = [&](cfl::Mode mode, unsigned threads) {
    cfl::EngineOptions o;
    o.mode = mode;
    o.threads = threads;
    o.solver.budget = 2'000'000;
    o.collect_objects = true;
    cfl::Engine engine(collapsed.pag, o);
    return clients::PointsToTable::from_engine_result(engine.run(queries));
  };

  const auto seq = run(cfl::Mode::kSequential, 1);
  const auto par = run(cfl::Mode::kDataSharingScheduling, 8);
  for (const NodeId q : queries) {
    const auto a = seq.points_to(q);
    const auto b = par.points_to(q);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "var " << q.value();
  }
}

}  // namespace
}  // namespace parcfl
