// Witness (explanation) API tests: chains are well-formed, start at the
// query, end at the allocation, follow real edges, and respect
// context-sensitivity (no witness for unrealisable facts).

#include <gtest/gtest.h>

#include "cfl/jmp_store.hpp"
#include "cfl/solver.hpp"
#include "test_util.hpp"

namespace parcfl::cfl {
namespace {

using pag::CallSiteId;
using pag::FieldId;
using pag::MethodId;
using pag::NodeId;
using pag::TypeId;

SolverOptions big() {
  SolverOptions o;
  o.budget = 10'000'000;
  return o;
}

TEST(Witness, SimpleChain) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto z = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  b.assign_local(z, y);
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big());
  const auto chain = solver.explain_points_to(z, o);

  ASSERT_EQ(chain.size(), 4u);  // z -> y -> x -> o
  EXPECT_EQ(chain.front().config.node, z);
  EXPECT_EQ(chain.front().via, Solver::Via::kQueryRoot);
  EXPECT_EQ(chain[1].config.node, y);
  EXPECT_EQ(chain[1].via, Solver::Via::kAssignLocal);
  EXPECT_EQ(chain[2].config.node, x);
  EXPECT_EQ(chain.back().config.node, o);
  EXPECT_EQ(chain.back().via, Solver::Via::kNew);
}

TEST(Witness, NoWitnessForAbsentFact) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big());
  EXPECT_TRUE(solver.explain_points_to(y, o).empty());
}

TEST(Witness, UnrealisableFactHasNoWitness) {
  // Mismatched call sites: recv <-ret_1- formal <-param_2- actual.
  pag::Pag::Builder b;
  const auto actual = b.add_local(TypeId(0), MethodId(0));
  const auto formal = b.add_local(TypeId(0), MethodId(1));
  const auto recv = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(actual, o);
  b.param(formal, actual, CallSiteId(2));
  b.ret(recv, formal, CallSiteId(1));
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big());
  EXPECT_TRUE(solver.explain_points_to(recv, o).empty());

  SolverOptions ci = big();
  ci.context_sensitive = false;
  Solver ci_solver(pag, contexts, nullptr, ci);
  EXPECT_FALSE(ci_solver.explain_points_to(recv, o).empty());
}

TEST(Witness, HeapMatchIsOneAnnotatedHop) {
  const auto fx = test::fig2();
  ContextTable contexts;
  Solver solver(fx.lowered.pag, contexts, nullptr, big());
  const auto chain = solver.explain_points_to(fx.s1, fx.o16);

  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.front().config.node, fx.s1);
  EXPECT_EQ(chain.back().config.node, fx.o16);
  bool has_heap_hop = false;
  for (const auto& step : chain)
    has_heap_hop |= step.via == Solver::Via::kHeapMatch;
  EXPECT_TRUE(has_heap_hop) << "s1 only reaches o16 through the container heap";

  // The unrealisable fact has no witness.
  EXPECT_TRUE(solver.explain_points_to(fx.s1, fx.o20).empty());
}

TEST(Witness, EveryReportedObjectIsExplainable) {
  const auto fx = test::fig2();
  ContextTable contexts;
  Solver solver(fx.lowered.pag, contexts, nullptr, big());
  for (const NodeId v : fx.lowered.queries) {
    for (const NodeId o : solver.points_to(v).nodes()) {
      const auto chain = solver.explain_points_to(v, o);
      ASSERT_FALSE(chain.empty()) << "var " << v.value() << " obj " << o.value();
      EXPECT_EQ(chain.front().config.node, v);
      EXPECT_EQ(chain.back().config.node, o);
      // Interior hops are variables.
      for (std::size_t i = 0; i + 1 < chain.size(); ++i)
        EXPECT_TRUE(fx.lowered.pag.is_variable(chain[i].config.node));
    }
  }
}

TEST(Witness, WorksWithSharingEnabled) {
  const auto fx = test::fig2();
  ContextTable contexts;
  JmpStore store;
  SolverOptions o = big();
  o.data_sharing = true;
  o.tau_finished = 0;
  Solver solver(fx.lowered.pag, contexts, &store, o);
  // Warm the store, then explain: the heap hop may ride a shortcut.
  (void)solver.points_to(fx.s1);
  const auto chain = solver.explain_points_to(fx.s1, fx.o16);
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.back().config.node, fx.o16);
}

TEST(Witness, ViaNamesAreStable) {
  EXPECT_STREQ(Solver::to_string(Solver::Via::kQueryRoot), "query");
  EXPECT_STREQ(Solver::to_string(Solver::Via::kHeapMatch), "heap-match");
  EXPECT_STREQ(Solver::to_string(Solver::Via::kNew), "new");
}

}  // namespace
}  // namespace parcfl::cfl
