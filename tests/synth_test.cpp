// Synthetic-workload generator tests: determinism, structural well-formedness
// of the lowered PAGs, knob behaviour, and the 20 Table I benchmark configs.

#include <gtest/gtest.h>

#include "frontend/lower.hpp"
#include "pag/pag_io.hpp"
#include "pag/validate.hpp"
#include "synth/benchmarks.hpp"
#include "synth/generator.hpp"

namespace parcfl::synth {
namespace {

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.seed = 7;
  const auto a = generate(cfg);
  const auto b = generate(cfg);
  const auto la = frontend::lower(a);
  const auto lb = frontend::lower(b);
  EXPECT_EQ(pag::write_pag_string(la.pag), pag::write_pag_string(lb.pag));
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  cfg.seed = 7;
  const auto a = frontend::lower(generate(cfg));
  cfg.seed = 8;
  const auto b = frontend::lower(generate(cfg));
  EXPECT_NE(pag::write_pag_string(a.pag), pag::write_pag_string(b.pag));
}

TEST(Generator, ProducesWellFormedPag) {
  GeneratorConfig cfg;
  cfg.seed = 11;
  const auto lowered = frontend::lower(generate(cfg));
  const auto errors = pag::validate(lowered.pag);
  EXPECT_TRUE(errors.empty()) << errors.front();
}

TEST(Generator, HasAllStatementShapes) {
  GeneratorConfig cfg;
  cfg.seed = 3;
  cfg.app_methods = 40;
  cfg.library_methods = 40;
  const auto lowered = frontend::lower(generate(cfg));
  for (unsigned k = 0; k < pag::kEdgeKindCount; ++k)
    EXPECT_GT(lowered.pag.edge_count_of_kind(static_cast<pag::EdgeKind>(k)), 0u)
        << "missing edge kind " << pag::to_string(static_cast<pag::EdgeKind>(k));
}

TEST(Generator, LibraryAppSplitDrivesQueries) {
  GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.app_methods = 10;
  cfg.library_methods = 50;
  const auto small_app = frontend::lower(generate(cfg));
  cfg.app_methods = 50;
  cfg.library_methods = 10;
  const auto big_app = frontend::lower(generate(cfg));
  EXPECT_GT(big_app.queries.size(), small_app.queries.size());
}

TEST(Generator, ContainerBlocksCreateHeapPaths) {
  GeneratorConfig cfg;
  cfg.seed = 9;
  cfg.containers = 3;
  cfg.container_use_blocks = 10;
  cfg.heap_weight = 0.0;  // containers are then the only heap users
  const auto lowered = frontend::lower(generate(cfg));
  EXPECT_GT(lowered.pag.edge_count_of_kind(pag::EdgeKind::kStore), 0u);
  EXPECT_GT(lowered.pag.edge_count_of_kind(pag::EdgeKind::kLoad), 0u);
}

TEST(Generator, SizeScalesWithMethods) {
  GeneratorConfig cfg;
  cfg.seed = 13;
  cfg.app_methods = 10;
  cfg.library_methods = 10;
  const auto small = frontend::lower(generate(cfg));
  cfg.app_methods = 60;
  cfg.library_methods = 60;
  const auto large = frontend::lower(generate(cfg));
  EXPECT_GT(large.pag.node_count(), 3 * small.pag.node_count());
}

TEST(Generator, EmitsCastsAndHierarchy) {
  GeneratorConfig cfg;
  cfg.seed = 17;
  cfg.cast_weight = 0.2;
  cfg.subclass_prob = 0.8;
  const auto program = generate(cfg);
  const auto lowered = frontend::lower(program);
  EXPECT_GT(lowered.casts.size(), 0u);

  std::size_t subclasses = 0;
  for (const auto& t : program.types()) subclasses += t.super.valid() ? 1 : 0;
  EXPECT_GT(subclasses, program.types().size() / 4);
}

TEST(Generator, ZeroCastWeightEmitsNoCasts) {
  GeneratorConfig cfg;
  cfg.seed = 17;
  cfg.cast_weight = 0.0;
  const auto lowered = frontend::lower(generate(cfg));
  EXPECT_EQ(lowered.casts.size(), 0u);
}

TEST(Generator, TypeConsistentHeapAccesses) {
  // Loads/stores use values typed by the field declaration, so the observed
  // containment graph equals the declared one (the DD metric's premise).
  GeneratorConfig cfg;
  cfg.seed = 23;
  const auto program = generate(cfg);
  const auto lowered = frontend::lower(program);
  std::size_t checked = 0;
  for (const auto& m : program.methods()) {
    for (const auto& s : m.body) {
      if (s.op != frontend::Op::kStore) continue;
      const auto field_type = program.field(s.field).type;
      const auto value_type = program.var(s.src).type;
      // The generator falls back to an arbitrary var only when the method
      // has no variable of the field's type; count exact matches dominate.
      checked += field_type == value_type ? 1 : 0;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Benchmarks, TwentyNamedSpecs) {
  const auto& specs = table1_benchmarks();
  ASSERT_EQ(specs.size(), 20u);
  EXPECT_EQ(specs.front().name, "_200_check");
  EXPECT_EQ(specs.back().name, "xalan");
  int dacapo = 0;
  for (const auto& s : specs) dacapo += s.is_dacapo ? 1 : 0;
  EXPECT_EQ(dacapo, 10);
  EXPECT_EQ(&benchmark_spec("tomcat"), &specs[18]);
}

TEST(Benchmarks, ConfigsScale) {
  const auto& spec = benchmark_spec("_202_jess");
  const auto small = config_for(spec, 0.5);
  const auto large = config_for(spec, 2.0);
  EXPECT_GT(large.app_methods + large.library_methods,
            small.app_methods + small.library_methods);
}

TEST(Benchmarks, JvmIsLibraryHeavyDacapoAppHeavy) {
  const auto jvm = config_for(benchmark_spec("_209_db"), 1.0);
  const auto dacapo = config_for(benchmark_spec("pmd"), 1.0);
  const double jvm_app =
      static_cast<double>(jvm.app_methods) / (jvm.app_methods + jvm.library_methods);
  const double dc_app = static_cast<double>(dacapo.app_methods) /
                        (dacapo.app_methods + dacapo.library_methods);
  EXPECT_LT(jvm_app, dc_app);
}

TEST(Benchmarks, AllBuildAtTinyScale) {
  for (const auto& spec : table1_benchmarks()) {
    const auto lowered = frontend::lower(generate(config_for(spec, 0.1)));
    EXPECT_TRUE(pag::is_well_formed(lowered.pag)) << spec.name;
    EXPECT_GT(lowered.queries.size(), 0u) << spec.name;
  }
}

}  // namespace
}  // namespace parcfl::synth
