// Client-layer tests: PointsToTable construction, alias classes, cast
// checking against the type hierarchy, nullness reports, mod-ref sets.

#include <gtest/gtest.h>

#include "clients/clients.hpp"
#include "pag/collapse.hpp"
#include "synth/generator.hpp"
#include "test_util.hpp"

namespace parcfl::clients {
namespace {

using frontend::VarId;
using pag::NodeId;

cfl::EngineOptions collecting_options() {
  cfl::EngineOptions o;
  o.mode = cfl::Mode::kDataSharingScheduling;
  o.threads = 2;
  o.solver.budget = 1'000'000;
  o.collect_objects = true;
  return o;
}

TEST(PointsToTable, FromEngineMatchesFromSolver) {
  const auto fx = test::fig2();
  cfl::Engine engine(fx.lowered.pag, collecting_options());
  const auto result = engine.run(fx.lowered.queries);
  const auto from_engine = PointsToTable::from_engine_result(result);

  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  so.budget = 1'000'000;
  cfl::Solver solver(fx.lowered.pag, contexts, nullptr, so);
  const auto from_solver = PointsToTable::from_solver(solver, fx.lowered.queries);

  ASSERT_EQ(from_engine.size(), from_solver.size());
  for (const NodeId q : fx.lowered.queries) {
    const auto a = from_engine.points_to(q);
    const auto b = from_solver.points_to(q);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "var " << q.value();
    EXPECT_TRUE(from_engine.is_complete(q));
  }
}

TEST(PointsToTable, UnqueriedVariableIsEmptyAndIncomplete) {
  PointsToTable table;
  EXPECT_TRUE(table.points_to(NodeId(5)).empty());
  EXPECT_FALSE(table.is_complete(NodeId(5)));
  EXPECT_FALSE(table.contains(NodeId(5)));
}

TEST(PointsToTable, MayAliasMatchesSolver) {
  const auto fx = test::fig2();
  cfl::Engine engine(fx.lowered.pag, collecting_options());
  const auto table = PointsToTable::from_engine_result(engine.run(fx.lowered.queries));

  EXPECT_EQ(table.may_alias(fx.s1, fx.n1), cfl::Solver::AliasAnswer::kMay);
  EXPECT_EQ(table.may_alias(fx.s1, fx.n2), cfl::Solver::AliasAnswer::kNo);
  EXPECT_EQ(table.may_alias(fx.v1, fx.v2), cfl::Solver::AliasAnswer::kNo);
  // A variable outside the table makes the answer unknown unless aliased.
  EXPECT_EQ(table.may_alias(fx.s1, NodeId(fx.lowered.pag.node_count() - 1)),
            cfl::Solver::AliasAnswer::kUnknown);
}

TEST(PointsToTable, AliasClassesPartitionFig2) {
  const auto fx = test::fig2();
  cfl::Engine engine(fx.lowered.pag, collecting_options());
  const auto table = PointsToTable::from_engine_result(engine.run(fx.lowered.queries));

  const auto classes = table.alias_classes();
  // Every queried variable appears exactly once.
  std::size_t total = 0;
  for (const auto& c : classes) total += c.size();
  EXPECT_EQ(total, fx.lowered.queries.size());

  // s1/n1 share o16; s2/n2 share o20; v1 and v2 are singletons.
  auto class_of = [&](NodeId v) -> const std::vector<NodeId>* {
    for (const auto& c : classes)
      if (std::find(c.begin(), c.end(), v) != c.end()) return &c;
    return nullptr;
  };
  EXPECT_EQ(class_of(fx.s1), class_of(fx.n1));
  EXPECT_EQ(class_of(fx.s2), class_of(fx.n2));
  EXPECT_NE(class_of(fx.s1), class_of(fx.s2));
  EXPECT_EQ(class_of(fx.v1)->size(), 1u);
}

// ---- cast checking ------------------------------------------------------------

struct CastFixture {
  frontend::Program program;
  frontend::LoweredProgram lowered;
  std::size_t safe_index, unsafe_index;
};

CastFixture cast_fixture() {
  CastFixture f;
  auto& p = f.program;
  const auto t_base = p.add_type("Base");
  const auto t_derived = p.add_type("Derived", true, t_base);
  const auto t_other = p.add_type("Other");

  const auto m = p.add_method("m", true);
  const auto d = p.add_local(m, "d", t_derived);
  const auto b = p.add_local(m, "b", t_base);
  const auto cast_ok = p.add_local(m, "ok", t_derived);
  const auto cast_bad = p.add_local(m, "bad", t_other);

  p.stmt_alloc(m, d, t_derived);
  p.stmt_assign(m, b, d);                 // upcast: b only ever holds Derived
  p.stmt_cast(m, cast_ok, t_derived, b);  // downcast succeeds
  p.stmt_cast(m, cast_bad, t_other, b);   // Derived is no Other: must fail
  f.safe_index = 0;
  f.unsafe_index = 1;

  f.lowered = frontend::lower(p);
  return f;
}

TEST(CastChecker, FlagsImpossibleCasts) {
  const auto f = cast_fixture();
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  cfl::Solver solver(f.lowered.pag, contexts, nullptr, so);
  const auto table =
      PointsToTable::from_solver(solver, test::all_variables(f.lowered.pag));

  const auto reports = check_casts(f.program, f.lowered, f.lowered.pag, table);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[f.safe_index].verdict, CastVerdict::kSafe);
  EXPECT_EQ(reports[f.unsafe_index].verdict, CastVerdict::kMayFail);
  EXPECT_TRUE(reports[f.unsafe_index].witness.valid());
}

TEST(CastChecker, IncompleteAnswersAreUnknown) {
  const auto f = cast_fixture();
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  so.budget = 1;  // too small for b's two-node walk (some queries still finish)
  cfl::Solver solver(f.lowered.pag, contexts, nullptr, so);
  const auto table =
      PointsToTable::from_solver(solver, test::all_variables(f.lowered.pag));
  // Both casts read b, whose query exhausts the budget: nothing is provable.
  const auto reports = check_casts(f.program, f.lowered, f.lowered.pag, table);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_FALSE(table.is_complete(f.lowered.casts[0].src));
  for (const auto& r : reports) EXPECT_EQ(r.verdict, CastVerdict::kUnknown);
}

TEST(CastChecker, WorksThroughCollapsedGraph) {
  const auto f = cast_fixture();
  const auto collapsed = pag::collapse_assign_cycles(f.lowered.pag);
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  cfl::Solver solver(collapsed.pag, contexts, nullptr, so);
  const auto table =
      PointsToTable::from_solver(solver, test::all_variables(collapsed.pag));
  const auto reports = check_casts(f.program, f.lowered, collapsed.pag, table,
                                   collapsed.representative);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[f.safe_index].verdict, CastVerdict::kSafe);
  EXPECT_EQ(reports[f.unsafe_index].verdict, CastVerdict::kMayFail);
}

TEST(CastChecker, SubtypeChainIsReflexiveTransitive) {
  frontend::Program p;
  const auto a = p.add_type("A");
  const auto b = p.add_type("B", true, a);
  const auto c = p.add_type("C", true, b);
  const auto d = p.add_type("D");
  EXPECT_TRUE(p.is_subtype(c, a));
  EXPECT_TRUE(p.is_subtype(c, c));
  EXPECT_TRUE(p.is_subtype(b, a));
  EXPECT_FALSE(p.is_subtype(a, c));
  EXPECT_FALSE(p.is_subtype(d, a));
}

// ---- nullness -----------------------------------------------------------------

TEST(Nullness, ReportsOnlyAppBases) {
  const auto fx = test::fig2();
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  cfl::Solver solver(fx.lowered.pag, contexts, nullptr, so);
  const auto table =
      PointsToTable::from_solver(solver, test::all_variables(fx.lowered.pag));

  // Treat o15 (v1's Vector) as "null": v1 is never a dereference base in
  // app code (main has no loads/stores), so the report must be empty.
  const std::vector<NodeId> nulls{fx.o15};
  const auto reports = check_dereferences(fx.lowered.pag, table, nulls);
  for (const auto& r : reports)
    EXPECT_TRUE(fx.lowered.pag.node(r.base).is_application);
}

TEST(Nullness, FlagsNullHoldingBases) {
  frontend::Program p;
  const auto t = p.add_type("T");
  const auto f = p.add_field(t, "f", t);
  const auto m = p.add_method("m", true);
  const auto base = p.add_local(m, "base", t);
  const auto out = p.add_local(m, "out", t);
  p.stmt_alloc(m, base, t);  // object 0 models null
  p.stmt_load(m, out, base, f);
  const auto lowered = frontend::lower(p);

  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  cfl::Solver solver(lowered.pag, contexts, nullptr, so);
  const auto table =
      PointsToTable::from_solver(solver, test::all_variables(lowered.pag));

  const std::vector<NodeId> nulls{lowered.object_node[0]};
  const auto reports = check_dereferences(lowered.pag, table, nulls);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].base, lowered.node_of(base));
  EXPECT_TRUE(reports[0].may_be_null);
  EXPECT_TRUE(reports[0].complete);
}

// ---- flow queries (taint / depends) ------------------------------------------

TEST(FlowQueries, Fig2TaintAndDependence) {
  const auto fx = test::fig2();
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  so.budget = 1'000'000;
  cfl::Solver solver(fx.lowered.pag, contexts, nullptr, so);

  // Paper Fig. 2: n1 is added to v1 and read back as s1; v2's container
  // carries n2 to s2. Cross-container flow does not exist.
  EXPECT_EQ(taint_flows(solver, fx.n1, fx.s1), FlowVerdict::kFlows);
  EXPECT_EQ(taint_flows(solver, fx.n1, fx.s2), FlowVerdict::kNoFlow);
  EXPECT_EQ(depends_on(solver, fx.s1, fx.n1), FlowVerdict::kFlows);
  EXPECT_EQ(depends_on(solver, fx.s2, fx.n1), FlowVerdict::kNoFlow);
  EXPECT_EQ(depends_on(solver, fx.s2, fx.n2), FlowVerdict::kFlows);

  // A variable trivially taints (and depends on) itself: the accepting start
  // state covers the empty path.
  EXPECT_EQ(taint_flows(solver, fx.s1, fx.s1), FlowVerdict::kFlows);
  EXPECT_EQ(depends_on(solver, fx.n2, fx.n2), FlowVerdict::kFlows);
}

TEST(FlowQueries, TaintAndDependsAreDual) {
  const auto fx = test::fig2();
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  so.budget = 1'000'000;
  cfl::Solver solver(fx.lowered.pag, contexts, nullptr, so);

  // depends(x, y) is taint(y, x) read backwards; with an ample budget both
  // verdicts are definite, so they must agree on every pair.
  const NodeId named[] = {fx.s1, fx.s2, fx.n1, fx.n2, fx.v1, fx.v2};
  for (const NodeId x : named)
    for (const NodeId y : named)
      EXPECT_EQ(depends_on(solver, x, y), taint_flows(solver, y, x))
          << "x=" << x.value() << " y=" << y.value();
}

TEST(FlowQueries, TruncatedTraversalIsUnknown) {
  const auto fx = test::fig2();
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  so.budget = 1;  // the walk dies after one step: s1 is unreachable in one
  cfl::Solver solver(fx.lowered.pag, contexts, nullptr, so);
  EXPECT_EQ(taint_flows(solver, fx.n1, fx.s1), FlowVerdict::kUnknown);
  EXPECT_EQ(depends_on(solver, fx.s1, fx.n1), FlowVerdict::kUnknown);
}

// ---- mod-ref ------------------------------------------------------------------

TEST(ModRef, ReadsWritesAndInterference) {
  frontend::Program p;
  const auto t = p.add_type("T");
  const auto f = p.add_field(t, "f", t);
  const auto g_field = p.add_field(t, "g", t);

  // writer(x): x.f = x      reader(y): r = y.f      other(z): r2 = z.g
  const auto writer = p.add_method("writer", true);
  const auto wx = p.add_param(writer, "x", t);
  p.stmt_store(writer, wx, f, wx);
  const auto reader = p.add_method("reader", true);
  const auto ry = p.add_param(reader, "y", t);
  const auto rr = p.add_local(reader, "r", t);
  p.stmt_load(reader, rr, ry, f);
  const auto other = p.add_method("other", true);
  const auto oz = p.add_param(other, "z", t);
  const auto orr = p.add_local(other, "r2", t);
  p.stmt_load(other, orr, oz, g_field);

  // main wires the same object into all three.
  const auto mn = p.add_method("main", true);
  const auto v = p.add_local(mn, "v", t);
  p.stmt_alloc(mn, v, t);
  p.stmt_call(mn, frontend::VarId::invalid(), writer, {v});
  p.stmt_call(mn, frontend::VarId::invalid(), reader, {v});
  p.stmt_call(mn, frontend::VarId::invalid(), other, {v});

  const auto lowered = frontend::lower(p);
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  cfl::Solver solver(lowered.pag, contexts, nullptr, so);
  const auto table =
      PointsToTable::from_solver(solver, test::all_variables(lowered.pag));

  const ModRefAnalysis modref(lowered.pag, table);
  EXPECT_EQ(modref.writes(writer).size(), 1u);
  EXPECT_TRUE(modref.reads(writer).empty());
  EXPECT_EQ(modref.reads(reader).size(), 1u);
  EXPECT_TRUE(modref.writes(reader).empty());

  EXPECT_TRUE(modref.interferes(writer, reader));   // same cell (o, f)
  EXPECT_FALSE(modref.interferes(writer, other));   // different field
  EXPECT_FALSE(modref.interferes(reader, other));   // two reads never clash
}

TEST(ModRef, EmptyOnPrograms) {
  synth::GeneratorConfig cfg;
  cfg.seed = 3;
  cfg.heap_weight = 0;
  cfg.containers = 0;
  cfg.container_use_blocks = 0;
  const auto lowered = frontend::lower(synth::generate(cfg));
  cfl::ContextTable contexts;
  cfl::SolverOptions so;
  cfl::Solver solver(lowered.pag, contexts, nullptr, so);
  const auto table = PointsToTable::from_solver(solver, {});
  const ModRefAnalysis modref(lowered.pag, table);
  for (std::uint32_t m = 0; m < lowered.pag.method_count(); ++m) {
    EXPECT_TRUE(modref.reads(pag::MethodId(m)).empty());
    EXPECT_TRUE(modref.writes(pag::MethodId(m)).empty());
  }
}

}  // namespace
}  // namespace parcfl::clients
