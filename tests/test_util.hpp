#pragma once
// Shared fixtures for the parcfl test suites:
//
//  * fig2(): the paper's running example (Fig. 2) — a Vector container with
//    add/get, two clients in main — built through the IR frontend. The paper
//    states the expected answers: with context-sensitivity s1 points to o16
//    only; context-insensitively it also picks up o20.
//
//  * random_layered_pag(): random PAGs for property tests. Variables live in
//    layers; param/ret edges connect adjacent layers (push = up, pop = down)
//    and all other variable-connecting edges stay within one layer. This
//    enforces the invariant stack-depth <= layer at every traversal point, so
//    realisable context nesting is bounded by the layer count and the exact
//    oracle's context cap is never hit.

#include <string>
#include <vector>

#include "frontend/ir.hpp"
#include "frontend/lower.hpp"
#include "pag/pag.hpp"
#include "support/rng.hpp"

namespace parcfl::test {

struct Fig2 {
  frontend::Program program;
  frontend::LoweredProgram lowered;
  // PAG nodes of interest (named as in the paper).
  pag::NodeId s1, s2, n1, n2, v1, v2;
  pag::NodeId o15, o16, o19, o20;  // v1 Vector, "N1" String, v2 Vector, Integer(1)
  pag::NodeId o6_box;              // the elems array allocated in the ctor
};

inline Fig2 fig2() {
  using frontend::VarId;
  Fig2 f;
  auto& p = f.program;

  const auto t_object = p.add_type("Object");
  const auto t_array = p.add_type("Object[]");
  const auto t_vector = p.add_type("Vector");
  const auto t_string = p.add_type("String");
  const auto t_integer = p.add_type("Integer");
  const auto f_elems = p.add_field(t_vector, "elems", t_array);
  const auto f_arr = p.add_field(t_array, "arr", t_object);

  // Vector() constructor: t = new Object[]; this.elems = t
  const auto m_ctor = p.add_method("Vector.<init>", false);
  const VarId ctor_this = p.add_param(m_ctor, "this", t_vector);
  const VarId ctor_t = p.add_local(m_ctor, "t", t_array);
  p.stmt_alloc(m_ctor, ctor_t, t_array);  // line 6: o6
  p.stmt_store(m_ctor, ctor_this, f_elems, ctor_t);

  // add(this, e): t = this.elems; t.arr = e
  const auto m_add = p.add_method("Vector.add", false);
  const VarId add_this = p.add_param(m_add, "this", t_vector);
  const VarId add_e = p.add_param(m_add, "e", t_object);
  const VarId add_t = p.add_local(m_add, "t", t_array);
  p.stmt_load(m_add, add_t, add_this, f_elems);
  p.stmt_store(m_add, add_t, f_arr, add_e);

  // get(this): t = this.elems; ret = t.arr
  const auto m_get = p.add_method("Vector.get", false);
  const VarId get_this = p.add_param(m_get, "this", t_vector);
  const VarId get_t = p.add_local(m_get, "t", t_array);
  const VarId get_ret = p.add_local(m_get, "ret", t_object);
  p.stmt_load(m_get, get_t, get_this, f_elems);
  p.stmt_load(m_get, get_ret, get_t, f_arr);
  p.set_return_var(m_get, get_ret);

  // main: two independent Vector clients (lines 14-22).
  const auto m_main = p.add_method("main", true);
  const VarId v1 = p.add_local(m_main, "v1", t_vector);
  const VarId n1 = p.add_local(m_main, "n1", t_string);
  const VarId s1 = p.add_local(m_main, "s1", t_object);
  const VarId v2 = p.add_local(m_main, "v2", t_vector);
  const VarId n2 = p.add_local(m_main, "n2", t_integer);
  const VarId s2 = p.add_local(m_main, "s2", t_object);

  p.stmt_alloc(m_main, v1, t_vector);                    // o15
  p.stmt_call(m_main, VarId::invalid(), m_ctor, {v1});
  p.stmt_alloc(m_main, n1, t_string);                    // o16
  p.stmt_call(m_main, VarId::invalid(), m_add, {v1, n1});
  p.stmt_call(m_main, s1, m_get, {v1});
  p.stmt_alloc(m_main, v2, t_vector);                    // o19
  p.stmt_call(m_main, VarId::invalid(), m_ctor, {v2});
  p.stmt_alloc(m_main, n2, t_integer);                   // o20
  p.stmt_call(m_main, VarId::invalid(), m_add, {v2, n2});
  p.stmt_call(m_main, s2, m_get, {v2});

  frontend::LowerOptions lo;
  lo.record_names = true;
  f.lowered = frontend::lower(p, lo);

  f.s1 = f.lowered.node_of(s1);
  f.s2 = f.lowered.node_of(s2);
  f.n1 = f.lowered.node_of(n1);
  f.n2 = f.lowered.node_of(n2);
  f.v1 = f.lowered.node_of(v1);
  f.v2 = f.lowered.node_of(v2);
  // object_node is in allocation order: ctor's box is allocated once (index
  // 0); main's allocations follow in statement order.
  f.o6_box = f.lowered.object_node[0];
  f.o15 = f.lowered.object_node[1];
  f.o16 = f.lowered.object_node[2];
  f.o19 = f.lowered.object_node[3];
  f.o20 = f.lowered.object_node[4];
  return f;
}

// ---- random layered PAGs ----------------------------------------------------

struct RandomPagConfig {
  std::uint64_t seed = 1;
  std::uint32_t layers = 3;
  std::uint32_t vars_per_layer = 3;
  std::uint32_t globals = 1;
  std::uint32_t objects = 3;
  std::uint32_t fields = 2;
  std::uint32_t call_sites = 3;
  std::uint32_t assign_edges = 4;
  std::uint32_t param_ret_edges = 4;
  std::uint32_t heap_edge_pairs = 2;  // ld/st edges (not necessarily matching)
  std::uint32_t global_edges = 1;
};

inline pag::Pag random_layered_pag(const RandomPagConfig& cfg) {
  using pag::NodeId;
  support::Rng rng(cfg.seed);
  pag::Pag::Builder b;
  b.set_counts(cfg.fields, cfg.call_sites, 1, cfg.layers);

  std::vector<std::vector<NodeId>> layer_vars(cfg.layers);
  for (std::uint32_t l = 0; l < cfg.layers; ++l)
    for (std::uint32_t i = 0; i < cfg.vars_per_layer; ++i)
      layer_vars[l].push_back(
          b.add_local(pag::TypeId(0), pag::MethodId(l)));

  std::vector<NodeId> globals;
  for (std::uint32_t i = 0; i < cfg.globals; ++i)
    globals.push_back(b.add_global(pag::TypeId(0)));

  auto pick = [&](const std::vector<NodeId>& v) {
    return v[rng.below(v.size())];
  };
  auto rand_layer = [&] { return static_cast<std::uint32_t>(rng.below(cfg.layers)); };

  // Objects: all new edges of one object stay within one layer.
  std::vector<NodeId> objects;
  for (std::uint32_t i = 0; i < cfg.objects; ++i) {
    const std::uint32_t l = rand_layer();
    const NodeId o = b.add_object(pag::TypeId(0), pag::MethodId(l));
    objects.push_back(o);
    b.new_edge(pick(layer_vars[l]), o);
    if (rng.chance(0.3)) b.new_edge(pick(layer_vars[l]), o);
  }

  for (std::uint32_t i = 0; i < cfg.assign_edges; ++i) {
    const std::uint32_t l = rand_layer();
    b.assign_local(pick(layer_vars[l]), pick(layer_vars[l]));
  }
  for (std::uint32_t i = 0; i < cfg.param_ret_edges && cfg.layers > 1; ++i) {
    const std::uint32_t low = static_cast<std::uint32_t>(rng.below(cfg.layers - 1));
    const auto site = pag::CallSiteId(
        static_cast<std::uint32_t>(rng.below(cfg.call_sites)));
    if (rng.chance(0.5))
      b.param(pick(layer_vars[low + 1]), pick(layer_vars[low]), site);
    else
      b.ret(pick(layer_vars[low]), pick(layer_vars[low + 1]), site);
  }
  for (std::uint32_t i = 0; i < cfg.heap_edge_pairs; ++i) {
    const std::uint32_t l1 = rand_layer(), l2 = rand_layer();
    const auto f1 = pag::FieldId(static_cast<std::uint32_t>(rng.below(cfg.fields)));
    const auto f2 = pag::FieldId(static_cast<std::uint32_t>(rng.below(cfg.fields)));
    b.load(pick(layer_vars[l1]), pick(layer_vars[l1]), f1);
    b.store(pick(layer_vars[l2]), pick(layer_vars[l2]), f2);
  }
  for (std::uint32_t i = 0; i < cfg.global_edges && !globals.empty(); ++i) {
    const std::uint32_t l = rand_layer();
    if (rng.chance(0.5))
      b.assign_global(pick(globals), pick(layer_vars[l]));
    else
      b.assign_global(pick(layer_vars[l]), pick(globals));
  }

  return std::move(b).finalize();
}

/// All variable node ids of a PAG.
inline std::vector<pag::NodeId> all_variables(const pag::Pag& pag) {
  std::vector<pag::NodeId> out;
  for (std::uint32_t n = 0; n < pag.node_count(); ++n)
    if (pag.is_variable(pag::NodeId(n))) out.push_back(pag::NodeId(n));
  return out;
}

/// All object node ids of a PAG.
inline std::vector<pag::NodeId> all_objects(const pag::Pag& pag) {
  std::vector<pag::NodeId> out;
  for (std::uint32_t n = 0; n < pag.node_count(); ++n)
    if (pag.is_object(pag::NodeId(n))) out.push_back(pag::NodeId(n));
  return out;
}

}  // namespace parcfl::test
