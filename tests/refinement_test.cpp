// Refinement tests: the field approximation over-approximates the exact
// analysis; the refinement driver proves safety cheaply when possible,
// refines implicated fields when not, and converges to the exact verdict.

#include <gtest/gtest.h>

#include <algorithm>

#include "clients/refinement.hpp"
#include "frontend/lower.hpp"
#include "synth/generator.hpp"
#include "test_util.hpp"

namespace parcfl::clients {
namespace {

using frontend::VarId;
using pag::FieldId;
using pag::MethodId;
using pag::NodeId;
using pag::TypeId;

cfl::SolverOptions big() {
  cfl::SolverOptions o;
  o.budget = 10'000'000;
  return o;
}

TEST(FieldApproximation, OverApproximatesExactMatching) {
  // p -> o1, q -> o2 (distinct), store q.f = y, load x = p.f.
  // Exact: no alias, x points to nothing. Approximate: x sees y's objects.
  pag::Pag::Builder b;
  const auto p = b.add_local(TypeId(0), MethodId(0));
  const auto q = b.add_local(TypeId(0), MethodId(0));
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o1 = b.add_object(TypeId(0), MethodId(0));
  const auto o2 = b.add_object(TypeId(0), MethodId(0));
  const auto oy = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(p, o1);
  b.new_edge(q, o2);
  b.new_edge(y, oy);
  b.store(q, y, FieldId(0));
  b.load(x, p, FieldId(0));
  const auto pag = std::move(b).finalize();

  cfl::ContextTable contexts;
  cfl::Solver exact(pag, contexts, nullptr, big());
  EXPECT_TRUE(exact.points_to(x).nodes().empty());

  cfl::SolverOptions approx_opts = big();
  approx_opts.field_approximation = true;
  cfl::Solver approx(pag, contexts, nullptr, approx_opts);
  EXPECT_TRUE(approx.points_to(x).contains(oy));

  // Refining the field restores exactness.
  approx_opts.refined_fields.insert(0);
  cfl::Solver refined(pag, contexts, nullptr, approx_opts);
  EXPECT_TRUE(refined.points_to(x).nodes().empty());
}

class ApproxSupersetTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxSupersetTest, ApproximationContainsExactAnswer) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 17'000;
  cfg.heap_edge_pairs = 4;
  const auto pag = test::random_layered_pag(cfg);

  cfl::ContextTable contexts;
  cfl::Solver exact(pag, contexts, nullptr, big());
  cfl::SolverOptions ao = big();
  ao.field_approximation = true;
  cfl::Solver approx(pag, contexts, nullptr, ao);

  for (const NodeId v : test::all_variables(pag)) {
    const auto e = exact.points_to(v).nodes();
    const auto a = approx.points_to(v).nodes();
    EXPECT_TRUE(std::includes(a.begin(), a.end(), e.begin(), e.end()))
        << "seed " << cfg.seed << " var " << v.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxSupersetTest,
                         ::testing::Range<std::uint64_t>(1, 21));

/// Two unaliased containers with same-named fields; the cast reads from the
/// Derived-only container. The approximation conflates them (may-fail); one
/// refinement round separates them (safe).
struct RefineFixture {
  frontend::Program program;
  frontend::LoweredProgram lowered;
  NodeId cast_src;
  TypeId t_derived;
};

RefineFixture refine_fixture() {
  RefineFixture f;
  auto& p = f.program;
  const auto t_base = p.add_type("Base");
  const auto t_derived = p.add_type("Derived", true, t_base);
  const auto t_other = p.add_type("Other");
  const auto t_box = p.add_type("Box");
  const auto f_val = p.add_field(t_box, "val", t_base);

  const auto m = p.add_method("m", true);
  const auto box1 = p.add_local(m, "box1", t_box);
  const auto box2 = p.add_local(m, "box2", t_box);
  const auto d = p.add_local(m, "d", t_derived);
  const auto other = p.add_local(m, "other", t_other);
  const auto got = p.add_local(m, "got", t_base);

  p.stmt_alloc(m, box1, t_box);
  p.stmt_alloc(m, box2, t_box);
  p.stmt_alloc(m, d, t_derived);
  p.stmt_alloc(m, other, t_other);
  p.stmt_store(m, box1, f_val, d);      // box1.val = Derived
  p.stmt_store(m, box2, f_val, other);  // box2.val = Other
  p.stmt_load(m, got, box1, f_val);     // got = box1.val  (Derived only)

  f.lowered = frontend::lower(p);
  f.cast_src = f.lowered.node_of(got);
  f.t_derived = t_derived;
  return f;
}

TEST(RefineCast, RefinesConflatedFieldAndProvesSafe) {
  const auto f = refine_fixture();
  cfl::ContextTable contexts;
  const auto r = refine_cast(f.program, f.lowered.pag, f.cast_src, f.t_derived,
                             contexts, big());
  EXPECT_EQ(r.verdict, CastVerdict::kSafe);
  EXPECT_GE(r.stats.iterations, 2u);       // approximation failed once
  EXPECT_FALSE(r.stats.refined.empty());   // the val field was refined
}

TEST(RefineCast, ApproximationAloneProvesSafeCheaply) {
  // Only Derived objects exist anywhere: even the conflating approximation
  // proves the cast — one pass, nothing refined.
  frontend::Program p;
  const auto t_base = p.add_type("Base");
  const auto t_derived = p.add_type("Derived", true, t_base);
  const auto t_box = p.add_type("Box");
  const auto f_val = p.add_field(t_box, "val", t_base);
  const auto m = p.add_method("m", true);
  const auto box = p.add_local(m, "box", t_box);
  const auto d = p.add_local(m, "d", t_derived);
  const auto got = p.add_local(m, "got", t_base);
  p.stmt_alloc(m, box, t_box);
  p.stmt_alloc(m, d, t_derived);
  p.stmt_store(m, box, f_val, d);
  p.stmt_load(m, got, box, f_val);
  const auto lowered = frontend::lower(p);

  cfl::ContextTable contexts;
  const auto r = refine_cast(p, lowered.pag, lowered.node_of(got), t_derived,
                             contexts, big());
  EXPECT_EQ(r.verdict, CastVerdict::kSafe);
  EXPECT_EQ(r.stats.iterations, 1u);
  EXPECT_TRUE(r.stats.refined.empty());
}

TEST(RefineCast, GenuineMayFailSurvivesRefinement) {
  // The offending object really is reachable exactly: Other stored into the
  // same box the cast reads.
  frontend::Program p;
  const auto t_base = p.add_type("Base");
  const auto t_derived = p.add_type("Derived", true, t_base);
  const auto t_other = p.add_type("Other");
  const auto t_box = p.add_type("Box");
  const auto f_val = p.add_field(t_box, "val", t_base);
  const auto m = p.add_method("m", true);
  const auto box = p.add_local(m, "box", t_box);
  const auto other = p.add_local(m, "other", t_other);
  const auto got = p.add_local(m, "got", t_base);
  p.stmt_alloc(m, box, t_box);
  p.stmt_alloc(m, other, t_other);
  p.stmt_store(m, box, f_val, other);
  p.stmt_load(m, got, box, f_val);
  const auto lowered = frontend::lower(p);

  cfl::ContextTable contexts;
  const auto r = refine_cast(p, lowered.pag, lowered.node_of(got), t_derived,
                             contexts, big());
  EXPECT_EQ(r.verdict, CastVerdict::kMayFail);
  EXPECT_TRUE(r.witness.valid());
}

TEST(RefineCast, AgreesWithExactCheckerOnRandomWorkloads) {
  synth::GeneratorConfig cfg;
  cfg.seed = 57;
  cfg.app_methods = 15;
  cfg.library_methods = 15;
  cfg.cast_weight = 0.1;
  cfg.subclass_prob = 0.6;
  const auto program = synth::generate(cfg);
  const auto lowered = frontend::lower(program);
  ASSERT_GT(lowered.casts.size(), 0u);

  // Exact verdicts from the general-purpose checker.
  cfl::ContextTable c1;
  cfl::Solver solver(lowered.pag, c1, nullptr, big());
  std::vector<NodeId> srcs;
  for (const auto& cast : lowered.casts) srcs.push_back(cast.src);
  const auto table = PointsToTable::from_solver(solver, srcs);
  const auto exact = check_casts(program, lowered, lowered.pag, table);

  cfl::ContextTable c2;
  const auto refined =
      refine_all_casts(program, lowered, lowered.pag, c2, big());
  ASSERT_EQ(refined.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_EQ(refined[i].verdict, exact[i].verdict) << "cast " << i;
}

}  // namespace
}  // namespace parcfl::clients
