// ContextTable tests: interning semantics, depth cap, lock-free reads under
// concurrent interning.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cfl/context.hpp"

namespace parcfl::cfl {
namespace {

using pag::CallSiteId;

TEST(ContextTable, EmptyBasics) {
  ContextTable t;
  EXPECT_EQ(ContextTable::empty(), CtxId(0));
  EXPECT_EQ(t.depth(ContextTable::empty()), 0u);
  EXPECT_EQ(t.pop(ContextTable::empty()), ContextTable::empty());
  EXPECT_FALSE(t.top(ContextTable::empty()).valid());
  EXPECT_EQ(t.size(), 1u);
}

TEST(ContextTable, PushPopTop) {
  ContextTable t;
  const CtxId c1 = t.push(ContextTable::empty(), CallSiteId(5));
  ASSERT_TRUE(c1.valid());
  EXPECT_EQ(t.depth(c1), 1u);
  EXPECT_EQ(t.top(c1), CallSiteId(5));
  EXPECT_EQ(t.pop(c1), ContextTable::empty());

  const CtxId c2 = t.push(c1, CallSiteId(9));
  EXPECT_EQ(t.depth(c2), 2u);
  EXPECT_EQ(t.top(c2), CallSiteId(9));
  EXPECT_EQ(t.pop(c2), c1);
}

TEST(ContextTable, InterningIsCanonical) {
  ContextTable t;
  const CtxId a = t.push(ContextTable::empty(), CallSiteId(1));
  const CtxId b = t.push(ContextTable::empty(), CallSiteId(1));
  EXPECT_EQ(a, b);
  const CtxId c = t.push(ContextTable::empty(), CallSiteId(2));
  EXPECT_NE(a, c);
  EXPECT_EQ(t.size(), 3u);  // empty + two distinct
}

TEST(ContextTable, DepthCapReturnsInvalid) {
  ContextTable t(3);
  CtxId c = ContextTable::empty();
  for (int i = 0; i < 3; ++i) {
    c = t.push(c, CallSiteId(static_cast<std::uint32_t>(i)));
    ASSERT_TRUE(c.valid());
  }
  EXPECT_FALSE(t.push(c, CallSiteId(99)).valid());
}

TEST(ContextTable, ToString) {
  ContextTable t;
  const CtxId c1 = t.push(ContextTable::empty(), CallSiteId(3));
  const CtxId c2 = t.push(c1, CallSiteId(7));
  EXPECT_EQ(t.to_string(ContextTable::empty()), "[]");
  EXPECT_EQ(t.to_string(c2), "[i3, i7]");
}

TEST(ContextTable, ManyContextsCrossChunks) {
  ContextTable t;
  // More than one 4096-entry chunk.
  std::vector<CtxId> ids;
  for (std::uint32_t i = 0; i < 10'000; ++i)
    ids.push_back(t.push(ContextTable::empty(), CallSiteId(i)));
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    EXPECT_EQ(t.top(ids[i]), CallSiteId(i));
    EXPECT_EQ(t.depth(ids[i]), 1u);
  }
}

TEST(ContextTable, ConcurrentInterningIsConsistent) {
  ContextTable t;
  constexpr int kThreads = 8;
  constexpr std::uint32_t kSites = 500;
  std::vector<std::vector<CtxId>> per_thread(kThreads,
                                             std::vector<CtxId>(kSites));
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint32_t i = 0; i < kSites; ++i) {
        // Two-level contexts shared across threads.
        const CtxId c1 = t.push(ContextTable::empty(), CallSiteId(i));
        per_thread[w][i] = t.push(c1, CallSiteId(i + 1));
      }
    });
  }
  for (auto& th : threads) th.join();

  // All threads agree on the interned ids, and reads are coherent.
  for (std::uint32_t i = 0; i < kSites; ++i) {
    for (int w = 1; w < kThreads; ++w)
      EXPECT_EQ(per_thread[w][i], per_thread[0][i]);
    EXPECT_EQ(t.top(per_thread[0][i]), CallSiteId(i + 1));
    EXPECT_EQ(t.depth(per_thread[0][i]), 2u);
    EXPECT_EQ(t.top(t.pop(per_thread[0][i])), CallSiteId(i));
  }
  EXPECT_EQ(t.size(), 1u + kSites * 2);
}

}  // namespace
}  // namespace parcfl::cfl
