// Structural edge cases for the demand solver: degenerate graphs, duplicate
// and self edges, deep chains, nested containers with known exact answers,
// context-depth limits, and query statuses.

#include <gtest/gtest.h>

#include "andersen/andersen.hpp"
#include "cfl/solver.hpp"
#include "frontend/lower.hpp"
#include "test_util.hpp"

namespace parcfl::cfl {
namespace {

using pag::CallSiteId;
using pag::FieldId;
using pag::MethodId;
using pag::NodeId;
using pag::TypeId;

SolverOptions big_budget() {
  SolverOptions o;
  o.budget = 50'000'000;
  return o;
}

TEST(SolverEdge, EmptyVariableHasEmptySet) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto pag = std::move(b).finalize();
  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big_budget());
  const auto r = solver.points_to(x);
  EXPECT_EQ(r.status, QueryStatus::kComplete);
  EXPECT_TRUE(r.tuples.empty());
}

TEST(SolverEdge, ObjectWithNoEdgesFlowsNowhere) {
  pag::Pag::Builder b;
  b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  const auto pag = std::move(b).finalize();
  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big_budget());
  EXPECT_TRUE(solver.flows_to(o).tuples.empty());
}

TEST(SolverEdge, SelfAssignIsHarmless) {
  pag::Pag::Builder b;
  b.set_dedupe(false);
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(x, x);
  const auto pag = std::move(b).finalize();
  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big_budget());
  const auto r = solver.points_to(x);
  EXPECT_EQ(r.status, QueryStatus::kComplete);
  EXPECT_TRUE(r.contains(o));
}

TEST(SolverEdge, DuplicateEdgesDoNotDuplicateResults) {
  pag::Pag::Builder b;
  b.set_dedupe(false);
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.new_edge(x, o);
  b.assign_local(y, x);
  b.assign_local(y, x);
  const auto pag = std::move(b).finalize();
  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big_budget());
  const auto r = solver.points_to(y);
  EXPECT_EQ(r.tuples.size(), 1u);
}

TEST(SolverEdge, LongChainCostsLinearSteps) {
  constexpr std::uint32_t kLen = 5000;
  pag::Pag::Builder b;
  const auto head = b.add_local(TypeId(0), MethodId(0));
  NodeId prev = head;
  for (std::uint32_t i = 0; i < kLen; ++i) {
    const auto next = b.add_local(TypeId(0), MethodId(0));
    b.assign_local(prev, next);
    prev = next;
  }
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(prev, o);
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big_budget());
  const auto r = solver.points_to(head);
  EXPECT_TRUE(r.contains(o));
  // One step per node plus the head.
  EXPECT_EQ(solver.counters().charged_steps, kLen + 1);
}

/// k-deep nested containers: c.f1 -> box1, box1.f2 -> box2, ..., boxk holds
/// the payload. get-chains must retrieve exactly the payload object.
TEST(SolverEdge, NestedContainersExactAnswer) {
  for (std::uint32_t depth : {1u, 2u, 3u, 4u}) {
    frontend::Program p;
    const auto t = p.add_type("T");
    std::vector<frontend::FieldId> fields;
    for (std::uint32_t i = 0; i < depth; ++i)
      fields.push_back(p.add_field(t, "f" + std::to_string(i), t));

    const auto m = p.add_method("m", true);
    // Build: cur = new; chain of stores downward; then loads back up.
    const auto root = p.add_local(m, "root", t);
    p.stmt_alloc(m, root, t);
    frontend::VarId cur = root;
    for (std::uint32_t i = 0; i < depth; ++i) {
      const auto next = p.add_local(m, "w" + std::to_string(i), t);
      p.stmt_alloc(m, next, t);
      p.stmt_store(m, cur, fields[i], next);
      cur = next;
    }
    const auto payload = p.add_local(m, "payload", t);
    p.stmt_alloc(m, payload, t);
    p.stmt_store(m, cur, fields[depth - 1], payload);

    frontend::VarId read = root;
    for (std::uint32_t i = 0; i < depth; ++i) {
      const auto next = p.add_local(m, "r" + std::to_string(i), t);
      p.stmt_load(m, next, read, fields[i]);
      read = next;
    }
    // One more hop retrieves the payload (it sits beside the last box in
    // the same field).
    const auto got = p.add_local(m, "got", t);
    p.stmt_load(m, got, read, fields[depth - 1]);

    const auto lowered = frontend::lower(p);
    ContextTable contexts;
    Solver solver(lowered.pag, contexts, nullptr, big_budget());

    // Validate against Andersen (flow-insensitive ground truth).
    const auto andersen = andersen::solve(lowered.pag);
    for (const NodeId v : test::all_variables(lowered.pag)) {
      const auto r = solver.points_to(v);
      ASSERT_EQ(r.status, QueryStatus::kComplete) << "depth " << depth;
      std::vector<std::uint32_t> got_vals;
      for (const NodeId n : r.nodes()) got_vals.push_back(n.value());
      const auto want = andersen.points_to(v);
      EXPECT_TRUE(std::equal(got_vals.begin(), got_vals.end(), want.begin(),
                             want.end()))
          << "depth " << depth << " var " << v.value();
    }
    // The payload is retrievable.
    EXPECT_TRUE(solver.points_to(lowered.node_of(got))
                    .contains(lowered.object_node.back()));
  }
}

TEST(SolverEdge, ContextDepthOverflowAbortsQuery) {
  // A ret-edge self-loop pushes unboundedly many contexts backwards.
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  b.ret(x, y, CallSiteId(0));
  b.ret(y, x, CallSiteId(1));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(y, o);
  const auto pag = std::move(b).finalize();

  ContextTable contexts(/*max_depth=*/16);
  Solver solver(pag, contexts, nullptr, big_budget());
  const auto r = solver.points_to(x);
  EXPECT_EQ(r.status, QueryStatus::kOutOfBudget);
  // The direct hit is still found before the abort.
  EXPECT_TRUE(r.contains(o));
}

TEST(SolverEdge, RecursionDepthGuardAborts) {
  // Deep heap nesting: x0 = b0.f; b0 aliases via x1 = b1.f ... forces nested
  // ReachableNodes recursion proportional to the chain, beyond the guard.
  constexpr std::uint32_t kDepth = 64;
  pag::Pag::Builder b;
  std::vector<NodeId> xs, bases;
  for (std::uint32_t i = 0; i < kDepth; ++i) {
    xs.push_back(b.add_local(TypeId(0), MethodId(0)));
    bases.push_back(b.add_local(TypeId(0), MethodId(0)));
  }
  for (std::uint32_t i = 0; i < kDepth; ++i) {
    b.load(xs[i], bases[i], FieldId(0));
    if (i + 1 < kDepth) b.assign_local(bases[i], xs[i + 1]);
  }
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(bases[kDepth - 1], o);
  const auto q = b.add_local(TypeId(0), MethodId(0));
  const auto payload = b.add_local(TypeId(0), MethodId(0));
  b.new_edge(q, o);
  b.store(q, payload, FieldId(0));
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  SolverOptions so = big_budget();
  so.max_recursion_depth = 8;  // far below the nesting
  Solver solver(pag, contexts, nullptr, so);
  const auto r = solver.points_to(xs[0]);
  EXPECT_EQ(r.status, QueryStatus::kOutOfBudget);

  // With an adequate guard the same query completes.
  SolverOptions ok = big_budget();
  Solver solver2(pag, contexts, nullptr, ok);
  EXPECT_EQ(solver2.points_to(xs[0]).status, QueryStatus::kComplete);
}

TEST(SolverEdge, CountersAccumulateAcrossQueries) {
  const auto fx = test::fig2();
  ContextTable contexts;
  Solver solver(fx.lowered.pag, contexts, nullptr, big_budget());
  (void)solver.points_to(fx.s1);
  const auto after_one = solver.counters().queries;
  (void)solver.points_to(fx.s2);
  EXPECT_EQ(solver.counters().queries, after_one + 1);
  solver.reset_counters();
  EXPECT_EQ(solver.counters().queries, 0u);
}

TEST(SolverEdge, GlobalQueriesWork) {
  pag::Pag::Builder b;
  const auto g = b.add_global(TypeId(0));
  const auto l = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(l, o);
  b.assign_global(g, l);
  const auto pag = std::move(b).finalize();
  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big_budget());
  EXPECT_TRUE(solver.points_to(g).contains(o));
}

TEST(SolverEdge, FlowsToCrossesCallBoundary) {
  // o -> actual -param_i-> formal; formal stored into a global; read back.
  pag::Pag::Builder b;
  const auto actual = b.add_local(TypeId(0), MethodId(0));
  const auto formal = b.add_local(TypeId(0), MethodId(1));
  const auto g = b.add_global(TypeId(0));
  const auto reader = b.add_local(TypeId(0), MethodId(2));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(actual, o);
  b.param(formal, actual, CallSiteId(3));
  b.assign_global(g, formal);
  b.assign_global(reader, g);
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, big_budget());
  const auto r = solver.flows_to(o);
  EXPECT_TRUE(r.contains(actual));
  EXPECT_TRUE(r.contains(formal));
  EXPECT_TRUE(r.contains(g));
  EXPECT_TRUE(r.contains(reader));
}

}  // namespace
}  // namespace parcfl::cfl
