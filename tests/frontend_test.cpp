// Frontend tests: IR construction, call-graph SCCs, lowering rules (including
// recursion collapsing and global-access temps), query extraction.

#include <gtest/gtest.h>

#include "frontend/callgraph.hpp"
#include "frontend/ir.hpp"
#include "frontend/lower.hpp"
#include "pag/validate.hpp"
#include "test_util.hpp"

namespace parcfl::frontend {
namespace {

TEST(Ir, BasicConstruction) {
  Program p;
  const auto t = p.add_type("T");
  const auto f = p.add_field(t, "f", t);
  const auto m = p.add_method("m");
  const auto a = p.add_param(m, "a", t);
  const auto b = p.add_local(m, "b", t);
  p.set_return_var(m, b);
  p.stmt_alloc(m, b, t);
  p.stmt_load(m, b, a, f);

  EXPECT_EQ(p.types().size(), 1u);
  EXPECT_EQ(p.type(t).fields.size(), 1u);
  EXPECT_EQ(p.method(m).params.size(), 1u);
  EXPECT_EQ(p.method(m).locals.size(), 2u);
  EXPECT_EQ(p.method(m).return_var, b);
  EXPECT_EQ(p.statement_count(), 2u);
  EXPECT_FALSE(p.is_global(a));
  EXPECT_TRUE(p.is_global(p.add_global("g", t)));
}

TEST(Ir, CallSitesAreUnique) {
  Program p;
  const auto t = p.add_type("T");
  const auto m1 = p.add_method("m1");
  const auto m2 = p.add_method("m2");
  (void)t;
  const auto s1 = p.stmt_call(m1, VarId::invalid(), m2, {});
  const auto s2 = p.stmt_call(m1, VarId::invalid(), m2, {});
  EXPECT_NE(s1, s2);
  EXPECT_EQ(p.call_site_count(), 2u);
}

Program recursive_program(bool mutual) {
  Program p;
  const auto t = p.add_type("T");
  const auto a = p.add_method("a");
  const auto b = p.add_method("b");
  const auto c = p.add_method("c");
  const auto va = p.add_param(a, "x", t);
  const auto vb = p.add_param(b, "x", t);
  const auto vc = p.add_param(c, "x", t);
  p.stmt_call(a, VarId::invalid(), b, {va});
  if (mutual) p.stmt_call(b, VarId::invalid(), a, {vb});
  p.stmt_call(b, VarId::invalid(), c, {vb});
  p.stmt_call(c, VarId::invalid(), c, {vc});  // self-recursive
  return p;
}

TEST(CallGraph, DetectsSccsAndSelfRecursion) {
  const Program p = recursive_program(true);
  const CallGraph cg(p);
  EXPECT_TRUE(cg.in_same_cycle(MethodId(0), MethodId(1)));
  EXPECT_FALSE(cg.in_same_cycle(MethodId(0), MethodId(2)));
  EXPECT_TRUE(cg.in_same_cycle(MethodId(2), MethodId(2)));  // self loop
  EXPECT_EQ(cg.recursive_method_count(), 3u);
}

TEST(CallGraph, AcyclicProgramHasNoRecursion) {
  const Program p = recursive_program(false);
  const CallGraph cg(p);
  EXPECT_FALSE(cg.in_same_cycle(MethodId(0), MethodId(1)));
  EXPECT_FALSE(cg.in_same_cycle(MethodId(0), MethodId(0)));
  EXPECT_EQ(cg.recursive_method_count(), 1u);  // only the self-recursive c
}

TEST(Lower, RecursionCollapsingRewritesParamEdges) {
  const Program p = recursive_program(true);
  LowerOptions collapse_on;
  const auto with = lower(p, collapse_on);
  LowerOptions collapse_off;
  collapse_off.collapse_recursion = false;
  const auto without = lower(p, collapse_off);

  // a<->b cycle and c's self-call are collapsed: their param edges become
  // assignl; only b->c keeps a param edge.
  EXPECT_EQ(with.collapsed_call_sites, 3u);
  EXPECT_EQ(with.pag.edge_count_of_kind(pag::EdgeKind::kParam), 1u);
  EXPECT_EQ(without.collapsed_call_sites, 0u);
  EXPECT_EQ(without.pag.edge_count_of_kind(pag::EdgeKind::kParam), 4u);
  EXPECT_EQ(with.pag.edge_count_of_kind(pag::EdgeKind::kAssignLocal), 3u);
}

TEST(Lower, GlobalsGoThroughTemps) {
  Program p;
  const auto t = p.add_type("T");
  const auto f = p.add_field(t, "f", t);
  const auto g = p.add_global("g", t);
  const auto m = p.add_method("m");
  const auto l = p.add_local(m, "l", t);
  p.stmt_alloc(m, g, t);       // new into a global -> temp
  p.stmt_load(m, l, g, f);     // load from a global base -> temp
  p.stmt_store(m, g, f, l);    // store to a global base -> temp
  const auto lowered = lower(p);

  EXPECT_EQ(lowered.temp_locals, 3u);
  EXPECT_TRUE(pag::is_well_formed(lowered.pag)) << "lowering must satisfy Fig. 1";
  // Every ld/st endpoint is a local.
  for (const pag::Edge& e : lowered.pag.edges()) {
    if (e.kind == pag::EdgeKind::kLoad || e.kind == pag::EdgeKind::kStore) {
      EXPECT_EQ(lowered.pag.kind(e.dst), pag::NodeKind::kLocal);
      EXPECT_EQ(lowered.pag.kind(e.src), pag::NodeKind::kLocal);
    }
  }
}

TEST(Lower, QueriesAreApplicationLocalsOnly) {
  const auto fx = test::fig2();
  // Application code is only main (6 declared locals); library methods
  // contribute none.
  EXPECT_EQ(fx.lowered.queries.size(), 6u);
  for (const pag::NodeId q : fx.lowered.queries) {
    EXPECT_EQ(fx.lowered.pag.kind(q), pag::NodeKind::kLocal);
    EXPECT_TRUE(fx.lowered.pag.node(q).is_application);
  }
}

TEST(Lower, ObjectsCarryAllocMethodAndAppFlag) {
  const auto fx = test::fig2();
  // o6 (the ctor's box) is a library allocation; o15/o16 are app allocations.
  EXPECT_FALSE(fx.lowered.pag.node(fx.o6_box).is_application);
  EXPECT_TRUE(fx.lowered.pag.node(fx.o15).is_application);
}

TEST(Lower, ArityMismatchIsTolerated) {
  Program p;
  const auto t = p.add_type("T");
  const auto callee = p.add_method("callee");
  p.add_param(callee, "a", t);
  p.add_param(callee, "b", t);
  const auto caller = p.add_method("caller");
  const auto x = p.add_local(caller, "x", t);
  p.stmt_call(caller, VarId::invalid(), callee, {x});  // one arg for two formals
  const auto lowered = lower(p);
  EXPECT_EQ(lowered.pag.edge_count_of_kind(pag::EdgeKind::kParam), 1u);
}

TEST(Lower, CastsLowerToAssignsAndAreRecorded) {
  Program p;
  const auto base = p.add_type("Base");
  const auto derived = p.add_type("Derived", true, base);
  const auto m = p.add_method("m");
  const auto x = p.add_local(m, "x", derived);
  const auto y = p.add_local(m, "y", base);
  const auto z = p.add_local(m, "z", derived);
  p.stmt_alloc(m, x, derived);
  p.stmt_assign(m, y, x);
  p.stmt_cast(m, z, derived, y);
  const auto lowered = lower(p);

  ASSERT_EQ(lowered.casts.size(), 1u);
  EXPECT_EQ(lowered.casts[0].dst, lowered.node_of(z));
  EXPECT_EQ(lowered.casts[0].src, lowered.node_of(y));
  EXPECT_EQ(lowered.casts[0].target, derived);
  // The cast contributes ordinary value flow.
  EXPECT_EQ(lowered.pag.edge_count_of_kind(pag::EdgeKind::kAssignLocal), 2u);
}

TEST(Lower, CastThroughGlobalUsesAssignGlobal) {
  Program p;
  const auto t = p.add_type("T");
  const auto g = p.add_global("g", t);
  const auto m = p.add_method("m");
  const auto l = p.add_local(m, "l", t);
  p.stmt_cast(m, l, t, g);
  const auto lowered = lower(p);
  ASSERT_EQ(lowered.casts.size(), 1u);
  EXPECT_EQ(lowered.pag.edge_count_of_kind(pag::EdgeKind::kAssignGlobal), 1u);
  EXPECT_TRUE(pag::is_well_formed(lowered.pag));
}

TEST(Ir, SubtypeHierarchy) {
  Program p;
  const auto a = p.add_type("A");
  const auto b = p.add_type("B", true, a);
  EXPECT_EQ(p.type(b).super, a);
  EXPECT_FALSE(p.type(a).super.valid());
  EXPECT_TRUE(p.is_subtype(b, b));
  EXPECT_TRUE(p.is_subtype(b, a));
  EXPECT_FALSE(p.is_subtype(a, b));
}

TEST(Lower, Fig2IsWellFormed) {
  const auto fx = test::fig2();
  EXPECT_TRUE(pag::is_well_formed(fx.lowered.pag));
  EXPECT_EQ(fx.lowered.object_node.size(), 5u);
  EXPECT_EQ(fx.lowered.pag.edge_count_of_kind(pag::EdgeKind::kNew), 5u);
}

}  // namespace
}  // namespace parcfl::frontend
