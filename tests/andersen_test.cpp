// Andersen baseline tests: hand-built constraint shapes plus agreement with
// the context-insensitive ExactOracle on random graphs.

#include <gtest/gtest.h>

#include <algorithm>

#include "andersen/andersen.hpp"
#include "andersen/prefilter.hpp"
#include "oracle/oracle.hpp"
#include "pag/delta.hpp"
#include "pag/reduce.hpp"
#include "test_util.hpp"

namespace parcfl::andersen {
namespace {

using pag::CallSiteId;
using pag::FieldId;
using pag::MethodId;
using pag::NodeId;
using pag::TypeId;

TEST(Andersen, NewAndCopy) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(x, o));
  EXPECT_TRUE(result.points_to(y, o));
  EXPECT_EQ(result.points_to(y).size(), 1u);
}

TEST(Andersen, LoadStoreThroughHeap) {
  // p = new A; q = p; q.f = y0; x = p.f  =>  x points to what y0 points to.
  pag::Pag::Builder b;
  const auto p = b.add_local(TypeId(0), MethodId(0));
  const auto q = b.add_local(TypeId(0), MethodId(0));
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y0 = b.add_local(TypeId(0), MethodId(0));
  const auto oa = b.add_object(TypeId(0), MethodId(0));
  const auto ob = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(p, oa);
  b.assign_local(q, p);
  b.new_edge(y0, ob);
  b.store(q, y0, FieldId(0));
  b.load(x, p, FieldId(0));
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(x, ob));
  EXPECT_FALSE(result.points_to(x, oa));
  // The heap cell (oa, f) holds ob.
  const auto cell = result.heap_cell(oa, FieldId(0));
  ASSERT_EQ(cell.size(), 1u);
  EXPECT_EQ(cell[0], ob.value());
}

TEST(Andersen, FieldSensitivityKeepsFieldsApart) {
  pag::Pag::Builder b;
  const auto p = b.add_local(TypeId(0), MethodId(0));
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto oa = b.add_object(TypeId(0), MethodId(0));
  const auto ob = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(p, oa);
  b.new_edge(y, ob);
  b.store(p, y, FieldId(0));
  b.load(x, p, FieldId(1));  // different field: no flow
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(x).empty());
}

TEST(Andersen, ParamRetActAsCopies) {
  pag::Pag::Builder b;
  const auto actual = b.add_local(TypeId(0), MethodId(0));
  const auto formal = b.add_local(TypeId(0), MethodId(1));
  const auto retvar = b.add_local(TypeId(0), MethodId(1));
  const auto recv = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(actual, o);
  b.param(formal, actual, CallSiteId(0));
  b.assign_local(retvar, formal);
  b.ret(recv, retvar, CallSiteId(0));
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(recv, o));
}

TEST(Andersen, CycleConverges) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  b.assign_local(x, y);
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(y, o));
  EXPECT_GT(result.stats().worklist_pops, 0u);
}

TEST(Andersen, HeapCycleConverges) {
  // x = new O; x.f = x; y = x.f; y.f = y
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.store(x, x, FieldId(0));
  b.load(y, x, FieldId(0));
  b.store(y, y, FieldId(0));
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(y, o));
}

class AndersenPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AndersenPropertyTest, MatchesContextInsensitiveOracle) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 9000;
  cfg.assign_edges = 6;
  cfg.heap_edge_pairs = 3;
  const auto pag = test::random_layered_pag(cfg);

  oracle::OracleOptions oo;
  oo.context_sensitive = false;
  const oracle::ExactOracle exact(pag, oo);
  const auto result = solve(pag);

  for (const NodeId v : test::all_variables(pag)) {
    const auto got = result.points_to(v);
    const auto want = exact.points_to(v);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << "seed " << cfg.seed << " var " << v.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AndersenPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 31));

// ---- Prefilter (bitset Andersen on the serving path) -----------------------

class PrefilterPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static pag::Pag make_pag(std::uint64_t salt) {
    test::RandomPagConfig cfg;
    cfg.seed = GetParam() + salt;
    cfg.assign_edges = 6;
    cfg.heap_edge_pairs = 3;
    return test::random_layered_pag(cfg);
  }
  static std::uint64_t GetParam() {
    return ::testing::TestWithParam<std::uint64_t>::GetParam();
  }
};

// The bitset re-representation is the same analysis: every membership bit,
// cardinality and emptiness answer must match the sorted-vector solver's.
TEST_P(PrefilterPropertyTest, AgreesWithVectorSolver) {
  const auto pag = make_pag(7000);
  const auto vec = solve(pag);
  const auto pf = Prefilter::build(pag);
  EXPECT_EQ(pf.revision(), pag.revision());
  for (const NodeId v : test::all_variables(pag)) {
    const auto want = vec.points_to(v);
    EXPECT_EQ(pf.pts_count(v), want.size()) << "var " << v.value();
    EXPECT_EQ(pf.pts_empty(v), want.empty()) << "var " << v.value();
    for (const NodeId o : test::all_objects(pag))
      EXPECT_EQ(pf.points_to(v, o), vec.points_to(v, o))
          << "var " << v.value() << " obj " << o.value();
  }
}

// The serving-path soundness contract: the prefilter's definite answers must
// never contradict the *context-sensitive* ground truth (the CFL answer is a
// subset of Andersen's, so prefilter-empty implies truly empty and
// prefilter-disjoint implies no alias). This is the differential that
// licenses the engine short-circuit.
TEST_P(PrefilterPropertyTest, DefiniteAnswersSoundVsContextSensitiveOracle) {
  const auto pag = make_pag(7100);
  const oracle::ExactOracle exact(pag);  // context-sensitive by default
  const auto pf = Prefilter::build(pag);
  const auto vars = test::all_variables(pag);

  std::vector<std::vector<std::uint32_t>> truth;
  truth.reserve(vars.size());
  for (const NodeId v : vars) truth.push_back(exact.points_to(v));

  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (pf.pts_empty(vars[i])) {
      EXPECT_TRUE(truth[i].empty())
          << "prefilter claimed empty for var " << vars[i].value()
          << " but the oracle disagrees (seed " << GetParam() << ")";
    }
    // Superset check: every true object is in the prefilter's row.
    for (const std::uint32_t o : truth[i])
      EXPECT_TRUE(pf.points_to(vars[i], NodeId(o)))
          << "var " << vars[i].value() << " missing obj " << o;
  }
  for (std::size_t i = 0; i < vars.size(); ++i) {
    for (std::size_t j = i; j < vars.size(); ++j) {
      if (!pf.no_alias(vars[i], vars[j])) continue;
      std::vector<std::uint32_t> common;
      std::set_intersection(truth[i].begin(), truth[i].end(),
                            truth[j].begin(), truth[j].end(),
                            std::back_inserter(common));
      EXPECT_TRUE(common.empty())
          << "prefilter claimed no-alias(" << vars[i].value() << ", "
          << vars[j].value() << ") falsely (seed " << GetParam() << ")";
    }
  }
}

// The deployed configuration solves the prefilter over the *reduced* graph.
// Reduction preserves CFL answers, so the combination must stay sound
// against the oracle on the faithful graph.
TEST_P(PrefilterPropertyTest, SoundOnReducedGraph) {
  const auto pag = make_pag(7200);
  const pag::Pag reduced = pag::reduce_unmatched_parens(pag);
  const oracle::ExactOracle exact(pag);
  const auto pf = Prefilter::build(reduced);
  for (const NodeId v : test::all_variables(pag)) {
    const auto want = exact.points_to(v);
    if (pf.pts_empty(v)) {
      EXPECT_TRUE(want.empty())
          << "var " << v.value() << " seed " << GetParam();
    }
    for (const std::uint32_t o : want)
      EXPECT_TRUE(pf.points_to(v, NodeId(o)))
          << "var " << v.value() << " missing obj " << o;
  }
}

// Incremental rebuild after an add-only delta must land on exactly the same
// fixpoint as a from-scratch solve of the extended graph.
TEST_P(PrefilterPropertyTest, IncrementalMatchesScratchAfterAddOnlyDelta) {
  const auto pag = make_pag(7300);
  const auto base = Prefilter::build(pag);

  pag::Delta delta(pag);
  const auto vars = test::all_variables(pag);
  const NodeId nv = delta.add_node(pag::NodeKind::kLocal, TypeId(0), MethodId(0));
  const NodeId no = delta.add_node(pag::NodeKind::kObject, TypeId(0), MethodId(0));
  delta.add_edge(pag::EdgeKind::kNew, nv, no);
  delta.add_edge(pag::EdgeKind::kAssignLocal, vars[0], nv);
  delta.add_edge(pag::EdgeKind::kAssignLocal, vars[1 % vars.size()], vars[0]);
  delta.add_edge(pag::EdgeKind::kStore, vars[0], nv, 0);
  delta.add_edge(pag::EdgeKind::kLoad, vars[2 % vars.size()], vars[0], 0);
  auto next = pag::apply_delta(pag, delta);
  ASSERT_TRUE(next.has_value());

  const auto scratch = Prefilter::build(*next);
  const auto incremental = Prefilter::build_incremental(*next, base);
  EXPECT_TRUE(incremental.stats().incremental);
  EXPECT_EQ(incremental.revision(), scratch.revision());
  for (const NodeId v : test::all_variables(*next)) {
    EXPECT_EQ(incremental.pts_count(v), scratch.pts_count(v))
        << "var " << v.value() << " seed " << GetParam();
    for (const NodeId o : test::all_objects(*next))
      EXPECT_EQ(incremental.points_to(v, o), scratch.points_to(v, o))
          << "var " << v.value() << " obj " << o.value();
  }
}

// Unknown node ids (e.g. nodes a delta added after the solve) must never be
// claimed empty — out-of-range probes answer false on every predicate.
TEST(Prefilter, OutOfRangeProbesNeverClaimEmptiness) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  const auto pag = std::move(b).finalize();
  const auto pf = Prefilter::build(pag);
  const NodeId beyond(pag.node_count() + 5);
  EXPECT_FALSE(pf.pts_empty(beyond));
  EXPECT_FALSE(pf.no_alias(beyond, x));
  EXPECT_FALSE(pf.no_alias(x, beyond));
  EXPECT_FALSE(pf.pts_empty(NodeId::invalid()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefilterPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace parcfl::andersen
