// Andersen baseline tests: hand-built constraint shapes plus agreement with
// the context-insensitive ExactOracle on random graphs.

#include <gtest/gtest.h>

#include <algorithm>

#include "andersen/andersen.hpp"
#include "oracle/oracle.hpp"
#include "test_util.hpp"

namespace parcfl::andersen {
namespace {

using pag::CallSiteId;
using pag::FieldId;
using pag::MethodId;
using pag::NodeId;
using pag::TypeId;

TEST(Andersen, NewAndCopy) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(x, o));
  EXPECT_TRUE(result.points_to(y, o));
  EXPECT_EQ(result.points_to(y).size(), 1u);
}

TEST(Andersen, LoadStoreThroughHeap) {
  // p = new A; q = p; q.f = y0; x = p.f  =>  x points to what y0 points to.
  pag::Pag::Builder b;
  const auto p = b.add_local(TypeId(0), MethodId(0));
  const auto q = b.add_local(TypeId(0), MethodId(0));
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y0 = b.add_local(TypeId(0), MethodId(0));
  const auto oa = b.add_object(TypeId(0), MethodId(0));
  const auto ob = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(p, oa);
  b.assign_local(q, p);
  b.new_edge(y0, ob);
  b.store(q, y0, FieldId(0));
  b.load(x, p, FieldId(0));
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(x, ob));
  EXPECT_FALSE(result.points_to(x, oa));
  // The heap cell (oa, f) holds ob.
  const auto cell = result.heap_cell(oa, FieldId(0));
  ASSERT_EQ(cell.size(), 1u);
  EXPECT_EQ(cell[0], ob.value());
}

TEST(Andersen, FieldSensitivityKeepsFieldsApart) {
  pag::Pag::Builder b;
  const auto p = b.add_local(TypeId(0), MethodId(0));
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto oa = b.add_object(TypeId(0), MethodId(0));
  const auto ob = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(p, oa);
  b.new_edge(y, ob);
  b.store(p, y, FieldId(0));
  b.load(x, p, FieldId(1));  // different field: no flow
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(x).empty());
}

TEST(Andersen, ParamRetActAsCopies) {
  pag::Pag::Builder b;
  const auto actual = b.add_local(TypeId(0), MethodId(0));
  const auto formal = b.add_local(TypeId(0), MethodId(1));
  const auto retvar = b.add_local(TypeId(0), MethodId(1));
  const auto recv = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(actual, o);
  b.param(formal, actual, CallSiteId(0));
  b.assign_local(retvar, formal);
  b.ret(recv, retvar, CallSiteId(0));
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(recv, o));
}

TEST(Andersen, CycleConverges) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  b.assign_local(x, y);
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(y, o));
  EXPECT_GT(result.stats().worklist_pops, 0u);
}

TEST(Andersen, HeapCycleConverges) {
  // x = new O; x.f = x; y = x.f; y.f = y
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.store(x, x, FieldId(0));
  b.load(y, x, FieldId(0));
  b.store(y, y, FieldId(0));
  const auto pag = std::move(b).finalize();
  const auto result = solve(pag);
  EXPECT_TRUE(result.points_to(y, o));
}

class AndersenPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AndersenPropertyTest, MatchesContextInsensitiveOracle) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 9000;
  cfg.assign_edges = 6;
  cfg.heap_edge_pairs = 3;
  const auto pag = test::random_layered_pag(cfg);

  oracle::OracleOptions oo;
  oo.context_sensitive = false;
  const oracle::ExactOracle exact(pag, oo);
  const auto result = solve(pag);

  for (const NodeId v : test::all_variables(pag)) {
    const auto got = result.points_to(v);
    const auto want = exact.points_to(v);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << "seed " << cfg.seed << " var " << v.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AndersenPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace parcfl::andersen
