// Oracle-infrastructure tests: the generic Earley parser, the LFS grammar,
// and agreement of both oracles on hand-built graphs with known answers.

#include <gtest/gtest.h>

#include "oracle/earley.hpp"
#include "oracle/oracle.hpp"
#include "test_util.hpp"

namespace parcfl::oracle {
namespace {

using pag::CallSiteId;
using pag::FieldId;
using pag::MethodId;
using pag::NodeId;
using pag::TypeId;

Grammar balanced_parens() {
  // S -> ( S ) | S S | ()
  Grammar g;
  g.nonterminal_count = 1;
  g.start = 0;
  const std::uint32_t open = 1, close = 2;
  g.productions.push_back({0, {open, 0, close}});
  g.productions.push_back({0, {0, 0}});
  g.productions.push_back({0, {open, close}});
  return g;
}

TEST(Earley, BalancedParens) {
  const Grammar g = balanced_parens();
  EXPECT_TRUE(earley_accepts(g, {1, 2}));
  EXPECT_TRUE(earley_accepts(g, {1, 1, 2, 2}));
  EXPECT_TRUE(earley_accepts(g, {1, 2, 1, 2}));
  EXPECT_TRUE(earley_accepts(g, {1, 1, 2, 2, 1, 2}));
  EXPECT_FALSE(earley_accepts(g, {1}));
  EXPECT_FALSE(earley_accepts(g, {2, 1}));
  EXPECT_FALSE(earley_accepts(g, {1, 2, 2}));
  EXPECT_FALSE(earley_accepts(g, {}));
}

TEST(Earley, AmbiguousGrammarStillDecides) {
  // E -> E + E | x (classic ambiguous grammar)
  Grammar g;
  g.nonterminal_count = 1;
  g.start = 0;
  const std::uint32_t plus = 1, x = 2;
  g.productions.push_back({0, {0, plus, 0}});
  g.productions.push_back({0, {x}});
  EXPECT_TRUE(earley_accepts(g, {2}));
  EXPECT_TRUE(earley_accepts(g, {2, 1, 2}));
  EXPECT_TRUE(earley_accepts(g, {2, 1, 2, 1, 2}));
  EXPECT_FALSE(earley_accepts(g, {1, 2}));
  EXPECT_FALSE(earley_accepts(g, {2, 1}));
}

TEST(LfsGrammar, AcceptsCoreStrings) {
  const Grammar g = build_lfs_grammar(2);
  // Terminal ids mirror earley.cpp's layout: nonterminals occupy [0,7).
  const std::uint32_t n = 7, nb = 8, a = 9, ab = 10;
  const std::uint32_t s0 = 11, l0 = 12, sb0 = 13, lb0 = 14;
  const std::uint32_t s1 = 15, l1 = 16;

  EXPECT_TRUE(earley_accepts(g, {n}));            // new
  EXPECT_TRUE(earley_accepts(g, {n, a}));         // new assign
  EXPECT_TRUE(earley_accepts(g, {n, a, a}));      // new assign assign
  // new st(f0) [nb n] ld(f0): store, alias via same object, load.
  EXPECT_TRUE(earley_accepts(g, {n, s0, nb, n, l0}));
  // Field mismatch is rejected.
  EXPECT_FALSE(earley_accepts(g, {n, s0, nb, n, l1}));
  EXPECT_FALSE(earley_accepts(g, {n, s1, nb, n, l0}));
  // alias with assignments inside the inverse segment.
  EXPECT_TRUE(earley_accepts(g, {n, a, s0, ab, nb, n, a, l0, a}));
  // Nested alias inside the flowsTo̅ segment: lb(f) alias sb(f).
  EXPECT_TRUE(earley_accepts(g, {n, s0, lb0, nb, n, sb0, nb, n, l0}));
  // Not starting with new.
  EXPECT_FALSE(earley_accepts(g, {a, n}));
  // Dangling store.
  EXPECT_FALSE(earley_accepts(g, {n, s0}));
}

TEST(ExactOracle, TransitiveAssignFlow) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto z = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  b.assign_local(z, y);
  const auto pag = std::move(b).finalize();

  const ExactOracle oracle(pag);
  EXPECT_EQ(oracle.points_to(z), (std::vector<std::uint32_t>{o.value()}));
  EXPECT_EQ(oracle.flows_to(o),
            (std::vector<std::uint32_t>{x.value(), y.value(), z.value()}));
  EXPECT_GT(oracle.fact_count(), 0u);
}

TEST(ExactOracle, ContextSensitivityOnFig2) {
  const auto fx = parcfl::test::fig2();
  const ExactOracle cs(fx.lowered.pag);
  const auto s1 = cs.points_to(fx.s1);
  EXPECT_TRUE(std::binary_search(s1.begin(), s1.end(), fx.o16.value()));
  EXPECT_FALSE(std::binary_search(s1.begin(), s1.end(), fx.o20.value()));

  OracleOptions ci_opts;
  ci_opts.context_sensitive = false;
  const ExactOracle ci(fx.lowered.pag, ci_opts);
  const auto s1_ci = ci.points_to(fx.s1);
  EXPECT_TRUE(std::binary_search(s1_ci.begin(), s1_ci.end(), fx.o20.value()));
}

TEST(BruteForce, SimpleChainMatchesOracle) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  const auto pag = std::move(b).finalize();

  const auto r = brute_force_flows_to(pag, o);
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.vars, (std::vector<std::uint32_t>{x.value(), y.value()}));
}

TEST(BruteForce, HeapMatchRequiresAlias) {
  // p, q point to the same object: store through q reaches load through p.
  pag::Pag::Builder b;
  const auto p = b.add_local(TypeId(0), MethodId(0));
  const auto q = b.add_local(TypeId(0), MethodId(0));
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  const auto o2 = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(p, o);
  b.new_edge(q, o);
  b.new_edge(y, o2);
  b.store(q, y, FieldId(0));
  b.load(x, p, FieldId(0));
  const auto pag = std::move(b).finalize();

  const auto r = brute_force_flows_to(pag, o2);
  EXPECT_FALSE(r.truncated);
  // o2 flows to y and through the heap into x.
  EXPECT_EQ(r.vars, (std::vector<std::uint32_t>{x.value(), y.value()}));

  const ExactOracle oracle(pag);
  EXPECT_EQ(oracle.flows_to(o2), r.vars);
}

TEST(BruteForce, ContextFilteringRejectsMismatchedSites) {
  pag::Pag::Builder b;
  const auto actual = b.add_local(TypeId(0), MethodId(0));
  const auto formal = b.add_local(TypeId(0), MethodId(1));
  const auto recv = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(actual, o);
  b.param(formal, actual, CallSiteId(0));
  b.ret(recv, formal, CallSiteId(1));  // mismatched exit
  const auto pag = std::move(b).finalize();

  const auto cs = brute_force_flows_to(pag, o);
  EXPECT_EQ(cs.vars, (std::vector<std::uint32_t>{actual.value(), formal.value()}));

  BruteForceOptions ci;
  ci.context_sensitive = false;
  const auto r_ci = brute_force_flows_to(pag, o, ci);
  EXPECT_EQ(r_ci.vars, (std::vector<std::uint32_t>{actual.value(), formal.value(),
                                                   recv.value()}));
}

TEST(BruteForce, TruncationFlagOnDenseCycles) {
  pag::Pag::Builder b;
  const auto x = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto o = b.add_object(TypeId(0), MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  b.assign_local(x, y);
  const auto pag = std::move(b).finalize();

  BruteForceOptions opts;
  opts.max_paths = 10;  // force truncation
  opts.max_path_length = 30;
  const auto r = brute_force_flows_to(pag, o, opts);
  EXPECT_TRUE(r.truncated);
  // Iterative deepening still finds the short witnesses first.
  EXPECT_EQ(r.vars, (std::vector<std::uint32_t>{x.value(), y.value()}));
}

}  // namespace
}  // namespace parcfl::oracle
