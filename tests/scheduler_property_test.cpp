// Property-based validation of the §III-C scheduler against brute-force
// recomputation on random PAGs: grouping equals direct-relation connectivity,
// connection distances equal DFS-computed longest paths (modulo SCC), type
// levels equal a naive recursive definition, and the emitted order respects
// the DD/CD sort keys.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cfl/scheduler.hpp"
#include "pag/delta.hpp"
#include "service/session.hpp"
#include "support/rng.hpp"
#include "support/scc.hpp"
#include "test_util.hpp"

namespace parcfl::cfl {
namespace {

using pag::EdgeKind;
using pag::NodeId;
using pag::Pag;

bool is_direct(EdgeKind k) {
  return k == EdgeKind::kAssignLocal || k == EdgeKind::kAssignGlobal ||
         k == EdgeKind::kParam || k == EdgeKind::kRet;
}

/// Longest path (in nodes, SCCs counted once) through `v` via brute force:
/// condense, then DFS all paths in the DAG (tiny graphs only).
std::uint64_t brute_cd(const Pag& pag, NodeId v) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (const pag::Edge& e : pag.edges())
    if (is_direct(e.kind)) edges.emplace_back(e.src.value(), e.dst.value());
  const auto g = support::CsrGraph::from_edges(pag.node_count(), edges);
  const auto scc = support::strongly_connected_components(g);
  const auto dag = support::condense(g, scc);

  std::vector<std::uint64_t> size(scc.component_count, 0);
  for (std::uint32_t n = 0; n < pag.node_count(); ++n)
    ++size[scc.component_of[n]];

  const std::uint32_t target = scc.component_of[v.value()];
  std::uint64_t best = 0;
  // DFS over all DAG paths; small graphs keep this tractable.
  std::function<void(std::uint32_t, std::uint64_t, bool)> dfs =
      [&](std::uint32_t c, std::uint64_t len, bool seen) {
        len += size[c];
        seen = seen || c == target;
        bool extended = false;
        for (const std::uint32_t succ : dag.successors(c)) {
          extended = true;
          dfs(succ, len, seen);
        }
        if (!extended && seen) best = std::max(best, len);
        if (seen && extended) best = std::max(best, len);
      };
  for (std::uint32_t c = 0; c < scc.component_count; ++c) dfs(c, 0, false);
  return best;
}

/// Naive L(t) "modulo recursion", built on an independent SCC notion:
/// a and b are in the same containment cycle iff mutually reachable; every
/// cycle counts once, so L(t) = 1 + max L(u) over types contained by t's
/// cycle that are outside it.
struct BruteLevels {
  using Contains = std::map<std::uint32_t, std::vector<std::uint32_t>>;
  const Contains& contains;
  std::uint32_t type_count;
  std::map<std::uint32_t, std::uint32_t> memo;  // scc-representative -> level

  bool reaches(std::uint32_t from, std::uint32_t to) const {
    std::vector<std::uint32_t> work{from};
    std::vector<bool> seen(type_count, false);
    seen[from] = true;
    while (!work.empty()) {
      const std::uint32_t cur = work.back();
      work.pop_back();
      if (const auto it = contains.find(cur); it != contains.end()) {
        for (const std::uint32_t next : it->second) {
          if (next == to) return true;
          if (!seen[next]) {
            seen[next] = true;
            work.push_back(next);
          }
        }
      }
    }
    return false;
  }

  std::vector<std::uint32_t> cycle_of(std::uint32_t t) const {
    std::vector<std::uint32_t> members{t};
    for (std::uint32_t u = 0; u < type_count; ++u)
      if (u != t && reaches(t, u) && reaches(u, t)) members.push_back(u);
    return members;
  }

  std::uint32_t level(std::uint32_t t) {
    const auto members = cycle_of(t);
    const std::uint32_t rep = *std::min_element(members.begin(), members.end());
    if (const auto it = memo.find(rep); it != memo.end()) return it->second;
    memo.emplace(rep, 1);  // provisional; real cycles never recurse back here
    std::uint32_t best = 0;
    for (const std::uint32_t m : members) {
      if (const auto it = contains.find(m); it != contains.end()) {
        for (const std::uint32_t u : it->second) {
          if (std::find(members.begin(), members.end(), u) != members.end())
            continue;
          best = std::max(best, level(u));
        }
      }
    }
    memo[rep] = 1 + best;
    return memo[rep];
  }
};

class SchedulerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerPropertyTest, GroupsAreDirectConnectivity) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam();
  cfg.assign_edges = 6;
  cfg.param_ret_edges = 5;
  const auto pag = test::random_layered_pag(cfg);
  const auto queries = test::all_variables(pag);

  SchedulingMetrics metrics;
  (void)schedule_queries(pag, queries, &metrics);

  // Brute-force connectivity via repeated relaxation.
  std::vector<std::uint32_t> comp(pag.node_count());
  for (std::uint32_t i = 0; i < comp.size(); ++i) comp[i] = i;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const pag::Edge& e : pag.edges()) {
      if (!is_direct(e.kind)) continue;
      const auto lo = std::min(comp[e.dst.value()], comp[e.src.value()]);
      if (comp[e.dst.value()] != lo || comp[e.src.value()] != lo) {
        comp[e.dst.value()] = comp[e.src.value()] = lo;
        changed = true;
      }
    }
  }
  for (std::size_t i = 0; i < queries.size(); ++i)
    for (std::size_t j = 0; j < queries.size(); ++j)
      EXPECT_EQ(metrics.group_of[i] == metrics.group_of[j],
                comp[queries[i].value()] == comp[queries[j].value()])
          << "seed " << cfg.seed << " vars " << queries[i].value() << ","
          << queries[j].value();
}

TEST_P(SchedulerPropertyTest, ConnectionDistancesMatchBruteForce) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 300;
  cfg.layers = 2;
  cfg.vars_per_layer = 3;
  cfg.assign_edges = 5;
  cfg.param_ret_edges = 3;
  cfg.heap_edge_pairs = 1;
  const auto pag = test::random_layered_pag(cfg);
  const auto queries = test::all_variables(pag);

  SchedulingMetrics metrics;
  (void)schedule_queries(pag, queries, &metrics);
  for (std::size_t i = 0; i < queries.size(); ++i)
    EXPECT_EQ(metrics.cd[i], brute_cd(pag, queries[i]))
        << "seed " << cfg.seed << " var " << queries[i].value();
}

TEST_P(SchedulerPropertyTest, TypeLevelsMatchNaiveDefinition) {
  // Random store/load typing over a handful of types.
  support::Rng rng(GetParam() + 7000);
  pag::Pag::Builder b;
  const std::uint32_t types = 4 + rng.below(4);
  b.set_counts(2, 0, types, 1);
  std::vector<NodeId> vars;
  for (std::uint32_t i = 0; i < 10; ++i)
    vars.push_back(
        b.add_local(pag::TypeId(static_cast<std::uint32_t>(rng.below(types))),
                    pag::MethodId(0)));
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto base = vars[rng.below(vars.size())];
    const auto val = vars[rng.below(vars.size())];
    if (rng.chance(0.5))
      b.store(base, val, pag::FieldId(static_cast<std::uint32_t>(rng.below(2))));
    else
      b.load(val, base, pag::FieldId(static_cast<std::uint32_t>(rng.below(2))));
  }
  const auto pag = std::move(b).finalize();

  std::map<std::uint32_t, std::vector<std::uint32_t>> contains;
  for (const pag::Edge& e : pag.edges()) {
    if (e.kind != EdgeKind::kStore && e.kind != EdgeKind::kLoad) continue;
    const NodeId base = e.kind == EdgeKind::kStore ? e.dst : e.src;
    const NodeId val = e.kind == EdgeKind::kStore ? e.src : e.dst;
    const auto tb = pag.node(base).type, tv = pag.node(val).type;
    if (tb.valid() && tv.valid() && tb != tv)
      contains[tb.value()].push_back(tv.value());
  }

  const auto levels = compute_type_levels(pag);
  ASSERT_EQ(levels.size(), pag.type_count());
  BruteLevels brute{contains, pag.type_count(), {}};
  for (std::uint32_t t = 0; t < pag.type_count(); ++t)
    EXPECT_EQ(levels[t], brute.level(t)) << "seed " << GetParam() << " type " << t;
}

TEST_P(SchedulerPropertyTest, OrderRespectsSortKeys) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() + 600;
  const auto pag = test::random_layered_pag(cfg);
  const auto queries = test::all_variables(pag);

  SchedulingMetrics metrics;
  const auto schedule = schedule_queries(pag, queries, &metrics);

  // Map each ordered query back to its metrics index.
  std::map<std::uint32_t, std::size_t> index;
  for (std::size_t i = 0; i < queries.size(); ++i) index[queries[i].value()] = i;

  for (std::size_t i = 0; i + 1 < schedule.ordered.size(); ++i) {
    const std::size_t a = index.at(schedule.ordered[i].value());
    const std::size_t b = index.at(schedule.ordered[i + 1].value());
    const double dd_a = metrics.group_dd[metrics.group_of[a]];
    const double dd_b = metrics.group_dd[metrics.group_of[b]];
    EXPECT_LE(dd_a, dd_b + 1e-12) << "groups out of DD order at " << i;
    if (metrics.group_of[a] == metrics.group_of[b])
      EXPECT_LE(metrics.cd[a], metrics.cd[b]) << "CD order violated at " << i;
  }

  // Units tile the ordered sequence exactly.
  std::uint32_t expected_begin = 0;
  for (const auto [begin, end] : schedule.units) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, schedule.ordered.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---- warm + delta across engine modes ---------------------------------------
//
// The service-level counterpart of the scheduler properties above: on a
// random PAG, every engine mode must agree on every answer at every stage of
// a warm-batch → update_from_file → warm-batch lifecycle. Scheduling and
// sharing are performance features; the delta path (invalidation included)
// must leave them observationally identical to the sequential engine.

class WarmDeltaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WarmDeltaPropertyTest, ModesAgreeBeforeAndAfterUpdateFromFile) {
  test::RandomPagConfig cfg;
  cfg.seed = GetParam() * 31 + 5;
  cfg.layers = 3;
  cfg.vars_per_layer = 5;
  cfg.objects = 5;
  cfg.assign_edges = 10;
  cfg.param_ret_edges = 6;
  cfg.heap_edge_pairs = 4;
  const Pag pag = test::random_layered_pag(cfg);
  const auto vars = test::all_variables(pag);
  ASSERT_FALSE(vars.empty());

  // A delta that respects the layering invariant: new local + object wired
  // into existing vars with intra-layer edges only.
  support::Rng rng(GetParam() * 69427 + 1);
  pag::Delta delta(pag);
  const NodeId fresh = delta.add_node(pag::NodeKind::kLocal, pag::TypeId(0),
                                      pag::MethodId(0));
  delta.add_edge(pag::EdgeKind::kAssignLocal, fresh,
                 vars[rng.below(vars.size())]);
  const NodeId obj = delta.add_node(pag::NodeKind::kObject, pag::TypeId(0),
                                    pag::MethodId(0));
  delta.add_edge(pag::EdgeKind::kNew, vars[rng.below(vars.size())], obj);
  delta.add_edge(pag::EdgeKind::kAssignLocal, vars[rng.below(vars.size())],
                 vars[rng.below(vars.size())]);

  const std::string path = ::testing::TempDir() + "warm_delta_" +
                           std::to_string(GetParam()) + ".delta";
  {
    std::ofstream out(path);
    pag::write_delta(out, delta);
  }

  std::vector<service::Session::Item> items;
  for (const NodeId v : vars) items.push_back({v, 0});

  const Mode modes[] = {Mode::kSequential, Mode::kNaive, Mode::kDataSharing,
                        Mode::kDataSharingScheduling};
  std::vector<service::Session::BatchResult> cold, warm, updated;
  for (const Mode mode : modes) {
    service::Session::Options o;
    o.engine.mode = mode;
    o.engine.threads = mode == Mode::kSequential ? 1 : 2;
    o.engine.solver.budget = 1u << 20;
    o.engine.solver.tau_finished = 2;
    o.engine.solver.tau_unfinished = 10;
    service::Session session(pag, o);

    cold.push_back(session.run_batch(items));
    warm.push_back(session.run_batch(items));  // rides minted shortcuts

    std::string error;
    service::Session::UpdateStats stats;
    ASSERT_TRUE(session.update_from_file(path, &error, &stats)) << error;
    EXPECT_EQ(stats.revision, 1u);
    updated.push_back(session.run_batch(items));
  }
  std::remove(path.c_str());

  for (std::size_t m = 1; m < std::size(modes); ++m) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(cold[m].items[i].status, cold[0].items[i].status)
          << "mode " << m << " cold item " << i;
      EXPECT_EQ(cold[m].items[i].objects, cold[0].items[i].objects)
          << "mode " << m << " cold item " << i;
      EXPECT_EQ(warm[m].items[i].objects, warm[0].items[i].objects)
          << "mode " << m << " warm item " << i;
      EXPECT_EQ(updated[m].items[i].status, updated[0].items[i].status)
          << "mode " << m << " updated item " << i;
      EXPECT_EQ(updated[m].items[i].objects, updated[0].items[i].objects)
          << "mode " << m << " updated item " << i;
    }
  }
  // Warm answers equal cold answers within each mode (sharing is invisible),
  // and the update actually changed something somewhere at least for the
  // var the fresh object was wired to — checked weakly: results are sane.
  for (std::size_t m = 0; m < std::size(modes); ++m)
    for (std::size_t i = 0; i < items.size(); ++i)
      EXPECT_EQ(warm[m].items[i].objects, cold[m].items[i].objects)
          << "mode " << m << " item " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmDeltaPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace parcfl::cfl
