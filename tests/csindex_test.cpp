// Compact reachability index tests (PR 8; DESIGN.md §13).
//
//  * build — entries agree with a cold sequential solve, find() is exact on
//    hits and misses, cancellation aborts between solves;
//  * invalidation — dirty_keys covers touched entries (including, under
//    field approximation, entries coupled through a field hub by a field's
//    first store — the PR 8 review regression), without() drops them and
//    compacts the target pool, and after a Session::update the pruned
//    index still answers identically to an index-free session that applied
//    the same delta;
//  * outcome identity — the metamorphic bar: with the index on, every mode,
//    warm or cold, any per-item budget, answers exactly what an index-off
//    session answers (an index hit additionally charges 0 steps);
//  * persistence — spilled v3 state carries the hot-key section, so a
//    reopened session re-seeds its compactor queue and rebuilds unprompted;
//  * churn — LRU eviction destroying a session mid-build abandons the build
//    cleanly (the tsan target);
//  * stats — a revision-stale prefilter reports ready:false plus the
//    revision being built instead of a stale hit-rate (PR 8 bugfix), and the
//    `index` wire verb serves the csindex block end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cfl/csindex.hpp"
#include "cfl/solver.hpp"
#include "pag/delta.hpp"
#include "pag/pag_io.hpp"
#include "service/manager.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/session.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace parcfl {
namespace {

using pag::EdgeKind;
using pag::NodeId;
using pag::NodeKind;

constexpr std::uint32_t kLayers = 3;

cfl::SolverOptions cold_opts() {
  cfl::SolverOptions o;
  o.budget = 1'000'000;
  return o;
}

pag::Pag small_pag(std::uint64_t seed) {
  test::RandomPagConfig cfg;
  cfg.seed = seed;
  cfg.layers = kLayers;
  cfg.vars_per_layer = 4;
  cfg.objects = 4;
  cfg.assign_edges = 6;
  cfg.param_ret_edges = 5;
  cfg.heap_edge_pairs = 3;
  return test::random_layered_pag(cfg);
}

std::vector<std::uint64_t> keys_of(const std::vector<NodeId>& vars) {
  std::vector<std::uint64_t> keys;
  for (const NodeId v : vars) keys.push_back(cfl::CsIndex::key(v));
  return keys;
}

service::Session::Options session_options(cfl::Mode mode, bool index) {
  service::Session::Options o;
  o.engine.threads = 2;
  o.engine.mode = mode;
  o.engine.solver.budget = 1'000'000;
  // Miniature graphs: publish aggressively so sharing and the index both
  // have real entries to serve.
  o.engine.solver.tau_finished = 5;
  o.engine.solver.tau_unfinished = 50;
  o.prefilter = false;  // deterministic: no background solve racing tests
  o.reduce_graph = false;
  o.index = index;
  o.index_hot_threshold = 1;  // mine on first sight — tests drive note_hot
  return o;
}

std::vector<service::Session::Item> items_of(const std::vector<NodeId>& vars,
                                             std::uint64_t budget = 0) {
  std::vector<service::Session::Item> items;
  for (const NodeId v : vars) items.push_back(service::Session::Item{v, budget});
  return items;
}

/// Locals of a layered test graph, grouped by layer (= containing method).
std::vector<std::vector<NodeId>> vars_by_layer(const pag::Pag& pag) {
  std::vector<std::vector<NodeId>> out(kLayers);
  for (std::uint32_t n = 0; n < pag.node_count(); ++n) {
    const NodeId id(n);
    const auto& info = pag.node(id);
    if (info.kind == NodeKind::kLocal && info.method.valid() &&
        info.method.value() < kLayers)
      out[info.method.value()].push_back(id);
  }
  return out;
}

/// A small random delta preserving random_layered_pag's layering invariant:
/// new assign/new edges stay within one layer, plus a couple of removals.
pag::Delta small_delta(const pag::Pag& pag, std::uint64_t seed) {
  support::Rng rng(seed);
  auto layers = vars_by_layer(pag);
  auto pick = [&](const std::vector<NodeId>& v) {
    return v[rng.below(v.size())];
  };
  auto rand_layer = [&] {
    return static_cast<std::uint32_t>(rng.below(kLayers));
  };
  pag::Delta d(pag);
  for (std::uint64_t i = 0, n = 1 + rng.below(3); i < n; ++i) {
    const std::uint32_t l = rand_layer();
    d.add_edge(EdgeKind::kAssignLocal, pick(layers[l]), pick(layers[l]));
  }
  if (rng.chance(0.6)) {
    const std::uint32_t l = rand_layer();
    const NodeId o =
        d.add_node(NodeKind::kObject, pag::TypeId(0), pag::MethodId(l));
    d.add_edge(EdgeKind::kNew, pick(layers[l]), o);
  }
  const auto edges = pag.edges();
  for (std::uint64_t i = 0, n = rng.below(3); i < n && !edges.empty(); ++i) {
    const pag::Edge& e = edges[rng.below(edges.size())];
    d.remove_edge(e.kind, e.dst, e.src, e.aux);
  }
  return d;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "csindex_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Build

TEST(CsIndexBuild, EntriesMatchColdSolveAndFindIsExact) {
  const pag::Pag pag = small_pag(1);
  const auto vars = test::all_variables(pag);
  const auto index = cfl::build_csindex(pag, keys_of(vars), cold_opts());
  ASSERT_NE(index, nullptr);
  ASSERT_GT(index->entries().size(), 0u);
  EXPECT_TRUE(std::is_sorted(
      index->entries().begin(), index->entries().end(),
      [](const auto& a, const auto& b) { return a.key < b.key; }));

  cfl::ContextTable contexts;
  cfl::Solver solver(pag, contexts, nullptr, cold_opts());
  for (const auto& e : index->entries()) {
    const NodeId v = cfl::CsIndex::key_node(e.key);
    const auto r = solver.points_to(v);
    // Only complete answers are ever indexed — that is the soundness gate.
    ASSERT_EQ(r.status, cfl::QueryStatus::kComplete) << v.value();
    std::vector<NodeId> expect;
    for (const NodeId n : r.nodes()) expect.push_back(n);
    std::sort(expect.begin(), expect.end());
    const auto got = index->targets(e);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin(),
                           expect.end()))
        << "var " << v.value();
    const auto* found = index->find(e.key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->key, e.key);
  }
  EXPECT_EQ(index->find(cfl::CsIndex::key(NodeId(pag.node_count() + 7))),
            nullptr);
  const cfl::CsIndexStats stats = index->stats();
  EXPECT_EQ(stats.entries, index->entries().size());
  EXPECT_GT(stats.build_charged_steps, 0u);
  EXPECT_GT(stats.components, 0u);
}

TEST(CsIndexBuild, CancelAbortsAndReturnsNull) {
  const pag::Pag pag = small_pag(2);
  std::atomic<bool> cancel{true};
  EXPECT_EQ(cfl::build_csindex(pag, keys_of(test::all_variables(pag)),
                               cold_opts(), &cancel),
            nullptr);
}

TEST(CsIndexBuild, DirtyKeysCoverTouchedEntriesAndWithoutDropsThem) {
  const pag::Pag pag = small_pag(3);
  const auto index =
      cfl::build_csindex(pag, keys_of(test::all_variables(pag)), cold_opts());
  ASSERT_NE(index, nullptr);
  ASSERT_GT(index->entries().size(), 1u);
  EXPECT_TRUE(index->dirty_keys({}).empty());

  // Touching an indexed node must mark at least that node's own entry dirty
  // (its B-plane component trivially reaches itself).
  const std::uint64_t touched_key = index->entries().front().key;
  const std::uint32_t touched[] = {
      cfl::CsIndex::key_node(touched_key).value()};
  const auto dirty = index->dirty_keys(touched);
  ASSERT_TRUE(std::is_sorted(dirty.begin(), dirty.end()));
  EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(), touched_key));

  const auto pruned = index->without(dirty, /*new_revision=*/1);
  ASSERT_NE(pruned, nullptr);
  EXPECT_EQ(pruned->revision(), 1u);
  EXPECT_EQ(pruned->entries().size(), index->entries().size() - dirty.size());
  for (const std::uint64_t k : dirty) EXPECT_EQ(pruned->find(k), nullptr);
  // Surviving entries keep their exact targets through pool compaction.
  for (const auto& e : pruned->entries()) {
    const auto* orig = index->find(e.key);
    ASSERT_NE(orig, nullptr);
    const auto a = pruned->targets(e);
    const auto b = index->targets(*orig);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

/// A minimal field-coupling fixture: x = q.f0 feeds z, while s and y sit
/// apart with *no* store or load on any field. Adding the first store
/// s.f0 = y couples — under field approximation — to the load destination x
/// (and so to z) through f0's hub, with neither store endpoint owning a
/// build-time edge on f0.
struct FieldCouplingPag {
  pag::Pag pag;
  NodeId q, x, z, s, y, ob, oy;
};

FieldCouplingPag field_coupling_pag() {
  pag::Pag::Builder b;
  b.set_counts(/*fields=*/2, /*call_sites=*/1, /*types=*/1, /*methods=*/1);
  const NodeId q = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const NodeId x = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const NodeId z = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const NodeId s = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const NodeId y = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const NodeId ob = b.add_object(pag::TypeId(0), pag::MethodId(0));
  const NodeId oy = b.add_object(pag::TypeId(0), pag::MethodId(0));
  b.new_edge(q, ob);
  b.new_edge(y, oy);
  b.load(x, q, pag::FieldId(0));
  b.assign_local(z, x);
  return {std::move(b).finalize(), q, x, z, s, y, ob, oy};
}

TEST(CsIndexBuild, FirstStoreOnFieldDirtiesCoupledEntriesUnderFieldApprox) {
  const FieldCouplingPag g = field_coupling_pag();
  cfl::SolverOptions opts = cold_opts();
  opts.field_approximation = true;
  const auto index = cfl::build_csindex(
      g.pag, keys_of({g.q, g.x, g.z, g.s, g.y}), opts);
  ASSERT_NE(index, nullptr);
  ASSERT_NE(index->find(cfl::CsIndex::key(g.x)), nullptr);
  ASSERT_NE(index->find(cfl::CsIndex::key(g.z)), nullptr);

  // The store's endpoints have no build-time edge on field 0, so their plane
  // seeds alone reach no hub — exactly the hole the field seeds close.
  const std::uint32_t touched[] = {g.s.value(), g.y.value()};
  const auto node_only = index->dirty_keys(touched);
  EXPECT_FALSE(std::binary_search(node_only.begin(), node_only.end(),
                                  cfl::CsIndex::key(g.x)));

  const std::uint32_t fields[] = {0};
  const auto dirty = index->dirty_keys(touched, fields);
  EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(),
                                 cfl::CsIndex::key(g.x)));
  EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(),
                                 cfl::CsIndex::key(g.z)));

  // A field the labels never saw has no hub: everything is dirty.
  const std::uint32_t unknown[] = {7};
  EXPECT_EQ(index->dirty_keys(touched, unknown).size(),
            index->entries().size());
}

// ---------------------------------------------------------------------------
// Serving: outcome identity

TEST(CsIndexSession, HitsServeCompleteAnswersAtZeroChargedSteps) {
  const pag::Pag pag = small_pag(4);
  const auto vars = test::all_variables(pag);
  const auto items = items_of(vars);

  service::Session off(pag, session_options(cfl::Mode::kSequential, false));
  const auto expect = off.run_batch(items).items;

  service::Session on(pag, session_options(cfl::Mode::kSequential, true));
  for (const NodeId v : vars) on.note_hot(v);
  ASSERT_TRUE(on.wait_for_index());
  const auto info = on.index_info();
  EXPECT_TRUE(info.enabled);
  EXPECT_GT(info.entries, 0u);
  EXPECT_GE(info.builds, 1u);

  const auto got = on.run_batch(items).items;
  ASSERT_EQ(got.size(), expect.size());
  std::uint64_t zero_step_hits = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status, expect[i].status) << vars[i].value();
    EXPECT_EQ(got[i].objects, expect[i].objects) << vars[i].value();
    if (got[i].charged_steps == 0 &&
        got[i].status == cfl::QueryStatus::kComplete)
      ++zero_step_hits;
  }
  EXPECT_GT(zero_step_hits, 0u);
  EXPECT_GT(on.index_info().hits, 0u);
}

TEST(CsIndexSession, HotThresholdCountsBatchesNotOccurrences) {
  // The threshold is solver-served *batches* a root appeared in: one batch
  // repeating the root four times is one appearance, not four.
  const pag::Pag pag = small_pag(10);
  auto o = session_options(cfl::Mode::kSequential, true);
  o.index_hot_threshold = 2;
  service::Session s(pag, o);
  const NodeId root = test::all_variables(pag).front();
  const std::vector<service::Session::Item> repeated(
      4, service::Session::Item{root, 0});
  s.run_batch(repeated);
  ASSERT_TRUE(s.wait_for_index());
  EXPECT_EQ(s.index_info().entries, 0u);
  s.run_batch(repeated);
  ASSERT_TRUE(s.wait_for_index());
  EXPECT_EQ(s.index_info().entries, 1u);
}

class CsIndexMetamorphic : public ::testing::TestWithParam<std::uint64_t> {};

// The acceptance bar: index-on answers are indistinguishable from index-off
// answers in all four modes, warm and cold, across seeds.
TEST_P(CsIndexMetamorphic, IndexOnEqualsIndexOffAcrossModesWarmAndCold) {
  const pag::Pag pag = small_pag(GetParam());
  const auto vars = test::all_variables(pag);
  const auto items = items_of(vars);
  for (const cfl::Mode mode :
       {cfl::Mode::kSequential, cfl::Mode::kNaive, cfl::Mode::kDataSharing,
        cfl::Mode::kDataSharingScheduling}) {
    service::Session off(pag, session_options(mode, false));
    const auto cold_off = off.run_batch(items).items;
    const auto warm_off = off.run_batch(items).items;

    service::Session on(pag, session_options(mode, true));
    for (const NodeId v : vars) on.note_hot(v);
    ASSERT_TRUE(on.wait_for_index());
    const auto cold_on = on.run_batch(items).items;
    const auto warm_on = on.run_batch(items).items;

    ASSERT_EQ(cold_on.size(), cold_off.size());
    ASSERT_EQ(warm_on.size(), warm_off.size());
    for (std::size_t i = 0; i < cold_off.size(); ++i) {
      EXPECT_EQ(cold_on[i].status, cold_off[i].status)
          << "mode " << static_cast<int>(mode) << " var " << vars[i].value();
      EXPECT_EQ(cold_on[i].objects, cold_off[i].objects)
          << "mode " << static_cast<int>(mode) << " var " << vars[i].value();
      EXPECT_EQ(warm_on[i].status, warm_off[i].status)
          << "mode " << static_cast<int>(mode) << " var " << vars[i].value();
      EXPECT_EQ(warm_on[i].objects, warm_off[i].objects)
          << "mode " << static_cast<int>(mode) << " var " << vars[i].value();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsIndexMetamorphic,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(CsIndexSession, TightBudgetsNeverWidenAnswers) {
  // An index hit may only be served when the request's effective budget
  // covers the recorded solve cost — otherwise a budget-1 query would
  // complete through the index where a live solve would run out of budget.
  const pag::Pag pag = small_pag(5);
  const auto vars = test::all_variables(pag);
  service::Session off(pag, session_options(cfl::Mode::kSequential, false));
  service::Session on(pag, session_options(cfl::Mode::kSequential, true));
  for (const NodeId v : vars) on.note_hot(v);
  ASSERT_TRUE(on.wait_for_index());
  for (const std::uint64_t budget : {1ull, 2ull, 8ull, 64ull}) {
    const auto items = items_of(vars, budget);
    const auto expect = off.run_batch(items).items;
    const auto got = on.run_batch(items).items;
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].status, expect[i].status)
          << "budget " << budget << " var " << vars[i].value();
      EXPECT_EQ(got[i].objects, expect[i].objects)
          << "budget " << budget << " var " << vars[i].value();
    }
  }
}

// ---------------------------------------------------------------------------
// Updates

TEST(CsIndexSession, UpdateInvalidatesCoveredEntriesAndKeepsIdentity) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const pag::Pag pag = small_pag(seed);
    const auto vars = test::all_variables(pag);
    const auto items = items_of(vars);

    service::Session off(pag, session_options(cfl::Mode::kDataSharing, false));
    service::Session on(pag, session_options(cfl::Mode::kDataSharing, true));
    for (const NodeId v : vars) on.note_hot(v);
    ASSERT_TRUE(on.wait_for_index());
    ASSERT_GT(on.index_info().entries, 0u);
    on.run_batch(items);

    const pag::Delta d = small_delta(pag, seed * 97 + 13);
    std::string error;
    ASSERT_TRUE(off.update(d, &error)) << error;
    ASSERT_TRUE(on.update(d, &error)) << error;
    // The delta touches indexed roots (its assign endpoints are existing
    // locals, all of which are indexed), so the cone prune must have fired.
    EXPECT_GT(on.index_info().invalidated, 0u);

    const auto expect = off.run_batch(items).items;
    const auto got = on.run_batch(items).items;
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].status, expect[i].status)
          << "seed " << seed << " var " << vars[i].value();
      EXPECT_EQ(got[i].objects, expect[i].objects)
          << "seed " << seed << " var " << vars[i].value();
    }
  }
}

TEST(CsIndexSession, FirstStoreOnFieldKeepsIdentityUnderFieldApproximation) {
  // Regression (PR 8 review): with field approximation on, a delta adding a
  // field's *first* store couples to every load destination of that field
  // through the field hub. Neither store endpoint has a build-time edge on
  // the field, so a node-seeded dirty_keys comes back empty, no rebuild is
  // queued, and the surviving load-destination entries serve stale kComplete
  // answers forever.
  const FieldCouplingPag g = field_coupling_pag();
  auto opts_of = [](bool index) {
    auto o = session_options(cfl::Mode::kSequential, index);
    o.engine.solver.field_approximation = true;
    return o;
  };
  service::Session off(g.pag, opts_of(false));
  service::Session on(g.pag, opts_of(true));
  const std::vector<NodeId> vars = {g.q, g.x, g.z, g.s, g.y};
  const auto items = items_of(vars);
  // Mine only the load side: the store endpoints s and y must NOT be index
  // entries, else their own (trivially dirty) keys would requeue and the
  // resulting full rebuild would repair x by accident — the stale-serving
  // hole needs dirty_keys to come back empty.
  for (const NodeId v : {g.q, g.x, g.z}) on.note_hot(v);
  ASSERT_TRUE(on.wait_for_index());
  ASSERT_NE(on.index_info().entries, 0u);

  pag::Delta d(g.pag);
  d.add_edge(EdgeKind::kStore, /*dst=base*/ g.s, /*src=value*/ g.y,
             /*aux=field*/ 0);
  std::string error;
  ASSERT_TRUE(off.update(d, &error)) << error;
  ASSERT_TRUE(on.update(d, &error)) << error;
  ASSERT_TRUE(on.wait_for_index());

  const auto expect = off.run_batch(items).items;
  const auto got = on.run_batch(items).items;
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status, expect[i].status) << vars[i].value();
    EXPECT_EQ(got[i].objects, expect[i].objects) << vars[i].value();
  }
  // The approximation matches the new store against the load with no alias
  // test, so x (and z through the assign) must now see oy.
  EXPECT_EQ(got[1].objects, std::vector<NodeId>{g.oy});
  EXPECT_EQ(got[2].objects, std::vector<NodeId>{g.oy});
}

// ---------------------------------------------------------------------------
// Persistence: the v3 hot-key section

TEST(CsIndexSession, SpillCarriesHotKeysAndReopenRebuildsUnprompted) {
  const pag::Pag pag = small_pag(6);
  const auto vars = test::all_variables(pag);
  const std::string dir = fresh_dir("hotspill");

  std::uint64_t built_entries = 0;
  std::uint64_t spilled_jmp_entries = 0;
  {
    service::Session s(pag, session_options(cfl::Mode::kDataSharing, true));
    for (const NodeId v : vars) s.note_hot(v);
    ASSERT_TRUE(s.wait_for_index());
    built_entries = s.index_info().entries;
    ASSERT_GT(built_entries, 0u);
    s.run_batch(items_of(vars));  // dirty the warm state so spill writes
    spilled_jmp_entries = s.store().entry_count();
    bool wrote_pag = false;
    std::string error;
    ASSERT_TRUE(
        s.spill(dir + "/s.state", dir + "/s.pag", &wrote_pag, &error))
        << error;
  }

  // The reopened session seeds its compactor queue from the spilled hot
  // section: the index comes back without a single query being run.
  auto o = session_options(cfl::Mode::kDataSharing, true);
  o.state_path = dir + "/s.state";
  service::Session reopened(pag, std::move(o));
  EXPECT_FALSE(reopened.warm_start_stale());
  ASSERT_TRUE(reopened.wait_for_index());
  EXPECT_EQ(reopened.index_info().entries, built_entries);
  // And the index-off loader keeps accepting the same file (the hot section
  // rides a v3 flag, invisible to sessions that do not want it).
  auto off = session_options(cfl::Mode::kDataSharing, false);
  off.state_path = dir + "/s.state";
  service::Session plain(pag, std::move(off));
  EXPECT_FALSE(plain.warm_start_stale());
  EXPECT_EQ(plain.store().entry_count(), spilled_jmp_entries);
}

// ---------------------------------------------------------------------------
// Churn (the tsan target)

TEST(CsIndexSession, EvictionUnderChurnAbandonsBuildsCleanly) {
  const pag::Pag pag = small_pag(7);
  const auto vars = test::all_variables(pag);
  const std::string dir = fresh_dir("churn");
  const std::string pag_path = dir + "/g.pag";
  {
    std::ofstream os(pag_path);
    pag::write_pag(os, pag);
    ASSERT_TRUE(os.good());
  }
  service::SessionManager::Options mo;
  mo.session = session_options(cfl::Mode::kDataSharingScheduling, true);
  mo.max_resident = 1;  // tight cap: every alternation evicts mid-anything
  mo.spill_dir = dir;
  service::SessionManager mgr(mo);
  std::string error;
  ASSERT_TRUE(mgr.open("a", pag_path, &error)) << error;
  ASSERT_TRUE(mgr.open("b", pag_path, &error)) << error;

  constexpr int kThreads = 4;
  constexpr int kIters = 10;
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const char* names[] = {"a", "b"};
      const auto items = items_of(vars);
      for (int i = 0; i < kIters; ++i) {
        std::string e;
        auto lease = mgr.acquire(names[(t + i) % 2], &e);
        if (!lease) continue;
        // Force-feed the compactor so a build is usually in flight when the
        // lease drops and the LRU eviction destroys the session.
        for (const NodeId v : vars) lease->note_hot(v);
        answered += lease->run_batch(items).items.size();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(answered.load(), 0u);
  EXPECT_GT(mgr.counters().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Service stats and wire verb

TEST(CsIndexService, StalePrefilterStatsReportBuildingRevisionNotHitRate) {
  const pag::Pag pag = small_pag(8);
  service::ServiceOptions o;
  o.session = session_options(cfl::Mode::kDataSharingScheduling, false);
  o.session.prefilter = true;
  service::QueryService svc(pag, o);
  ASSERT_TRUE(svc.session().wait_for_prefilter());
  EXPECT_NE(svc.stats().to_json().find("\"prefilter\":{\"ready\":true,"),
            std::string::npos);

  // Hold the rebuild loop, commit a delta: the service is now in the
  // update-committed / rebuild-pending window. The stats contract: say a
  // rebuild is chasing revision 1, do NOT report the previous revision's
  // hit-rate as if it were live.
  svc.session().set_prefilter_paused(true);
  const pag::Delta d = small_delta(pag, 42);
  std::string error;
  ASSERT_TRUE(svc.session().update(d, &error)) << error;
  const std::string stale = svc.stats().to_json();
  EXPECT_NE(
      stale.find("\"prefilter\":{\"ready\":false,\"building_revision\":1}"),
      std::string::npos)
      << stale;
  EXPECT_EQ(stale.find("\"prefilter\":{\"hits\""), std::string::npos) << stale;

  svc.session().set_prefilter_paused(false);
  ASSERT_TRUE(svc.session().wait_for_prefilter());
  EXPECT_NE(svc.stats().to_json().find("\"prefilter\":{\"ready\":true,"),
            std::string::npos);
}

TEST(CsIndexService, IndexVerbServesJsonInlineAndOnWire) {
  const pag::Pag pag = small_pag(9);
  service::ServiceOptions o;
  o.session = session_options(cfl::Mode::kDataSharingScheduling, true);
  service::QueryService svc(pag, o);

  service::Request r;
  r.verb = service::Verb::kIndex;
  const service::Reply reply = svc.call(r);
  ASSERT_EQ(reply.status, service::Reply::Status::kOk) << reply.text;
  EXPECT_NE(reply.text.find("\"enabled\":true"), std::string::npos)
      << reply.text;
  EXPECT_EQ(service::format_reply(reply).rfind("ok index {", 0), 0u);

  std::istringstream in("index\nquit\n");
  std::ostringstream out;
  service::serve_stream(svc, in, out);
  EXPECT_NE(out.str().find("ok index {"), std::string::npos) << out.str();

  // stats carries the csindex block, and metrics the hit/miss gauges.
  EXPECT_NE(svc.stats().to_json().find("\"csindex\":{\"enabled\":true"),
            std::string::npos);
  const std::string metrics = svc.metrics_text();
  EXPECT_NE(metrics.find("parcfl_index_hits_total"), std::string::npos);
  EXPECT_NE(metrics.find("parcfl_index_misses_total"), std::string::npos);

  // With the index off, the verb still answers — reporting disabled.
  service::ServiceOptions off = o;
  off.session.index = false;
  service::QueryService svc_off(pag, off);
  const service::Reply off_reply = svc_off.call(r);
  ASSERT_EQ(off_reply.status, service::Reply::Status::kOk);
  EXPECT_NE(off_reply.text.find("\"enabled\":false"), std::string::npos);
}

}  // namespace
}  // namespace parcfl
