// Oracle-differential validation of the taint / depends query kinds
// (DESIGN.md §15) against the grammar-generalised brute force
// (oracle/earley.hpp): path enumeration over the doubled graph, Earley
// parsing each label string under the LFS production set started at R
// (taint) / Rb (depends).
//
// Methodology mirrors property_test.cpp's BruteForceCrossChecksExactOracle:
// graphs stay tiny (enumeration is exponential), brute ⊆ solver always — a
// short witnessed path is a real flow — and equality holds whenever the
// enumeration did not truncate and the solver completed within budget.
//
// Also here: the forward pointer grammar table vs. the hard-coded flows_to
// fast path (random graphs), tight-budget subset/monotonicity for the new
// kinds, and the Session-level end-to-end check including a post-update
// (delta) run. Session tests disable graph reduction: reduction drops
// copy-like edges whose source provably points nowhere, which preserves
// pointer answers but not value-flow answers (a `y = x` chain carries taint
// even when nothing allocates into it) — see the Options doc.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cfl/grammar.hpp"
#include "cfl/solver.hpp"
#include "oracle/earley.hpp"
#include "pag/delta.hpp"
#include "service/session.hpp"
#include "test_util.hpp"

namespace parcfl {
namespace {

using cfl::ContextTable;
using cfl::QueryStatus;
using cfl::Solver;
using cfl::SolverOptions;
using pag::EdgeKind;
using pag::NodeId;
using pag::NodeKind;
using test::RandomPagConfig;

SolverOptions unlimited() {
  SolverOptions o;
  o.budget = 100'000'000;
  o.context_sensitive = true;
  return o;
}

std::vector<std::uint32_t> values_of(const std::vector<NodeId>& nodes) {
  std::vector<std::uint32_t> out;
  out.reserve(nodes.size());
  for (const NodeId n : nodes) out.push_back(n.value());
  return out;
}

/// The tiny-graph configuration shared with property_test.cpp's brute-force
/// cross-check: small enough that path enumeration usually completes.
RandomPagConfig tiny_config(std::uint64_t seed) {
  RandomPagConfig cfg;
  cfg.seed = seed;
  cfg.layers = 2;
  cfg.vars_per_layer = 2;
  cfg.objects = 2;
  cfg.assign_edges = 2;
  cfg.param_ret_edges = 2;
  cfg.heap_edge_pairs = 1;
  cfg.globals = 1;
  return cfg;
}

oracle::BruteForceOptions brute_options() {
  oracle::BruteForceOptions bf;
  bf.max_path_length = 10;
  bf.max_paths = 2'000'000;
  return bf;
}

/// Differential core: for every variable root, solver.reach under `table`
/// against brute_force_reach under `grammar`.
void check_kind_against_oracle(const pag::Pag& pag,
                               const cfl::GrammarTable& table,
                               const oracle::Grammar& grammar,
                               std::uint64_t seed, const char* kind) {
  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, unlimited());
  const auto bf = brute_options();

  for (const NodeId v : test::all_variables(pag)) {
    const auto r = solver.reach(v, table);
    EXPECT_EQ(r.status, QueryStatus::kComplete)
        << kind << " seed " << seed << " var " << v.value();
    const auto got = values_of(r.nodes());
    const auto brute = oracle::brute_force_reach(pag, v, grammar, bf);
    // Soundness: every path-witnessed flow is in the solver's answer.
    EXPECT_TRUE(std::includes(got.begin(), got.end(), brute.vars.begin(),
                              brute.vars.end()))
        << kind << " seed " << seed << " var " << v.value();
    // Precision: a completed enumeration witnesses every solver fact.
    if (!brute.truncated && r.complete()) {
      EXPECT_EQ(got, brute.vars)
          << kind << " seed " << seed << " var " << v.value();
    }
  }
}

class TaintDependsOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaintDependsOracleTest, TaintMatchesBruteForce) {
  const auto cfg = tiny_config(GetParam());
  const auto pag = test::random_layered_pag(cfg);
  check_kind_against_oracle(pag, cfl::taint_table(),
                            oracle::build_taint_grammar(pag.field_count()),
                            cfg.seed, "taint");
}

TEST_P(TaintDependsOracleTest, DependsMatchesBruteForce) {
  const auto cfg = tiny_config(GetParam() + 100);
  const auto pag = test::random_layered_pag(cfg);
  check_kind_against_oracle(pag, cfl::depends_table(),
                            oracle::build_depends_grammar(pag.field_count()),
                            cfg.seed, "depends");
}

// The taint root is always in its own reach set (a variable taints itself;
// the accepting start state covers the empty path) and so is the depends
// root — pinned separately because the oracle adds the root out-of-band.
TEST_P(TaintDependsOracleTest, RootIsInItsOwnAnswer) {
  const auto pag = test::random_layered_pag(tiny_config(GetParam() + 200));
  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, unlimited());
  for (const NodeId v : test::all_variables(pag)) {
    EXPECT_TRUE(solver.reach(v, cfl::taint_table()).contains(v));
    EXPECT_TRUE(solver.reach(v, cfl::depends_table()).contains(v));
  }
}

// The compiled *forward pointer* grammar must reproduce the hard-coded
// flows_to fast path exactly — regular-size graphs, every object. (The
// backward identity runs across all engine modes in engine_property_test.)
TEST_P(TaintDependsOracleTest, ForwardPointerTableMatchesFlowsTo) {
  RandomPagConfig cfg;
  cfg.seed = GetParam() + 300;
  const auto pag = test::random_layered_pag(cfg);

  ContextTable c1, c2;
  Solver hard(pag, c1, nullptr, unlimited());
  Solver generic(pag, c2, nullptr, unlimited());

  for (const NodeId o : test::all_objects(pag)) {
    const auto want = hard.flows_to(o);
    const auto got = generic.reach(o, cfl::pointer_forward_table());
    EXPECT_EQ(got.status, want.status) << "seed " << cfg.seed << " obj "
                                       << o.value();
    EXPECT_EQ(values_of(got.nodes()), values_of(want.nodes()))
        << "seed " << cfg.seed << " obj " << o.value();
  }
}

// A tight budget may truncate the traversal but never invent a flow: the
// tight answer is a subset of the unlimited one, and a tight run that still
// reports kComplete found the full answer.
TEST_P(TaintDependsOracleTest, TightBudgetIsSoundSubset) {
  RandomPagConfig cfg;
  cfg.seed = GetParam() + 400;
  const auto pag = test::random_layered_pag(cfg);

  SolverOptions tight_opts = unlimited();
  tight_opts.budget = 40;
  ContextTable c1, c2;
  Solver tight(pag, c1, nullptr, tight_opts);
  Solver full(pag, c2, nullptr, unlimited());

  for (const cfl::GrammarTable* table :
       {&cfl::taint_table(), &cfl::depends_table()}) {
    for (const NodeId v : test::all_variables(pag)) {
      const auto small = tight.reach(v, *table);
      const auto big = full.reach(v, *table);
      ASSERT_EQ(big.status, QueryStatus::kComplete);
      const auto sv = values_of(small.nodes());
      const auto bv = values_of(big.nodes());
      EXPECT_TRUE(std::includes(bv.begin(), bv.end(), sv.begin(), sv.end()))
          << "seed " << cfg.seed << " var " << v.value();
      if (small.complete()) {
        EXPECT_EQ(sv, bv) << "seed " << cfg.seed << " var " << v.value();
      }
    }
  }
}

// ---- Session end-to-end: serve, update, serve again -------------------------

service::Session::Options flow_session_options() {
  service::Session::Options o;
  o.engine.mode = cfl::Mode::kDataSharingScheduling;
  o.engine.threads = 2;
  o.engine.solver = unlimited();
  o.engine.solver.tau_finished = 10;
  // Reduction is pointer-preserving, not flow-preserving: it may drop a copy
  // edge whose source provably points nowhere, yet `y = x` still carries
  // taint/dependence. Serve the faithful graph for exact oracle agreement.
  o.reduce_graph = false;
  o.prefilter = false;
  o.index = false;
  return o;
}

/// A well-formed delta: cross-wires two existing variables, wires in a fresh
/// local (so added nodes must show up in post-update answers), and removes
/// one existing assign edge (so dropped flows must disappear).
pag::Delta flow_delta(const pag::Pag& pag, std::uint64_t seed) {
  support::Rng rng(seed);
  pag::Delta d(pag);
  const auto vars = test::all_variables(pag);
  d.add_edge(EdgeKind::kAssignLocal, vars[rng.below(vars.size())],
             vars[rng.below(vars.size())]);
  const NodeId fresh =
      d.add_node(NodeKind::kLocal, pag::TypeId(0), pag::MethodId(0));
  d.add_edge(EdgeKind::kAssignLocal, fresh, vars[rng.below(vars.size())]);
  for (const pag::Edge& e : pag.edges())
    if (e.kind == EdgeKind::kAssignLocal) {
      d.remove_edge(e.kind, e.dst, e.src, e.aux);
      break;
    }
  return d;
}

/// Every taint/depends item of a batch against the brute-force oracle on
/// `truth` (the graph the session is currently serving).
void check_session_batch(const service::Session::BatchResult& result,
                         std::span<const service::Session::Item> items,
                         const pag::Pag& truth, std::uint64_t seed,
                         const char* phase) {
  // Tighter enumeration cap than the solver-level differential: this runs
  // once per item per served graph, and exactness on truncation-free graphs
  // is already pinned by TaintMatchesBruteForce / DependsMatchesBruteForce.
  auto bf = brute_options();
  bf.max_paths = 400'000;
  ASSERT_EQ(result.items.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto grammar = items[i].kind == cfl::QueryKind::kTaint
                             ? oracle::build_taint_grammar(truth.field_count())
                             : oracle::build_depends_grammar(truth.field_count());
    const auto brute = oracle::brute_force_reach(truth, items[i].var, grammar, bf);
    EXPECT_EQ(result.items[i].status, QueryStatus::kComplete)
        << phase << " seed " << seed << " item " << i;
    const auto got = values_of(result.items[i].objects);
    EXPECT_TRUE(std::includes(got.begin(), got.end(), brute.vars.begin(),
                              brute.vars.end()))
        << phase << " seed " << seed << " item " << i << " var "
        << items[i].var.value();
    if (!brute.truncated) {
      EXPECT_EQ(got, brute.vars) << phase << " seed " << seed << " item " << i
                                 << " var " << items[i].var.value();
    }
  }
}

TEST_P(TaintDependsOracleTest, SessionServesFlowsAndSurvivesUpdates) {
  const auto cfg = tiny_config(GetParam() + 500);
  const auto pag = test::random_layered_pag(cfg);
  service::Session session(pag, flow_session_options());

  std::vector<service::Session::Item> items;
  for (const NodeId v : test::all_variables(pag)) {
    items.push_back({v, 0, cfl::QueryKind::kTaint});
    items.push_back({v, 0, cfl::QueryKind::kDepends});
  }

  // Cold serve against the oracle, then once more warm: the jmp plane the
  // heap-group sub-queries populate must not perturb flow answers, so the
  // warm batch must reproduce the cold one bit-for-bit.
  const auto cold = session.run_batch(items);
  check_session_batch(cold, items, pag, cfg.seed, "cold");
  const auto warm = session.run_batch(items);
  ASSERT_EQ(warm.items.size(), cold.items.size());
  for (std::size_t i = 0; i < cold.items.size(); ++i) {
    EXPECT_EQ(warm.items[i].status, cold.items[i].status)
        << "warm seed " << cfg.seed << " item " << i;
    EXPECT_EQ(values_of(warm.items[i].objects), values_of(cold.items[i].objects))
        << "warm seed " << cfg.seed << " item " << i;
  }

  // Mutate, then re-serve: warm-after-update answers must equal the oracle
  // on the mutated graph (invalidation covers the pointer sub-query plane;
  // generic traversals are never cached across batches).
  const pag::Delta delta = flow_delta(pag, cfg.seed + 77);
  std::string error;
  const auto mutated = pag::apply_delta(pag, delta, nullptr, &error);
  ASSERT_TRUE(mutated.has_value()) << error;
  ASSERT_TRUE(session.update(delta, &error)) << error;

  check_session_batch(session.run_batch(items), items, *mutated, cfg.seed,
                      "post-update");
}

// Mixed batches: pointer items interleaved with flow items must each keep
// their own semantics (the engine dispatches per-item on QueryKind).
TEST_P(TaintDependsOracleTest, MixedBatchKeepsKindsApart) {
  const auto cfg = tiny_config(GetParam() + 600);
  const auto pag = test::random_layered_pag(cfg);
  service::Session session(pag, flow_session_options());

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, unlimited());

  std::vector<service::Session::Item> items;
  for (const NodeId v : test::all_variables(pag)) {
    items.push_back({v, 0, cfl::QueryKind::kPointsTo});
    items.push_back({v, 0, cfl::QueryKind::kTaint});
    items.push_back({v, 0, cfl::QueryKind::kDepends});
  }
  const auto result = session.run_batch(items);
  ASSERT_EQ(result.items.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto want =
        items[i].kind == cfl::QueryKind::kPointsTo
            ? solver.points_to(items[i].var)
            : solver.reach(items[i].var, items[i].kind == cfl::QueryKind::kTaint
                                             ? cfl::taint_table()
                                             : cfl::depends_table());
    EXPECT_EQ(values_of(result.items[i].objects), values_of(want.nodes()))
        << "seed " << cfg.seed << " item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaintDependsOracleTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace parcfl
