// Query-scheduling tests (§III-C): direct-relation grouping, connection
// distances, type levels / dependence depths, group ordering and work units.

#include <gtest/gtest.h>

#include <algorithm>

#include "cfl/scheduler.hpp"
#include "test_util.hpp"

namespace parcfl::cfl {
namespace {

using pag::CallSiteId;
using pag::FieldId;
using pag::MethodId;
using pag::NodeId;
using pag::TypeId;

TEST(TypeLevels, ContainmentChain) {
  // T0 has no fields used; T2.f -> T1, T1.f -> T0: L(T0)=1, L(T1)=2, L(T2)=3.
  pag::Pag::Builder b;
  b.set_counts(2, 0, 3, 1);
  const auto v0 = b.add_local(TypeId(0), MethodId(0));
  const auto v1 = b.add_local(TypeId(1), MethodId(0));
  const auto v2 = b.add_local(TypeId(2), MethodId(0));
  b.store(v2, v1, FieldId(0));  // type(v2) contains type(v1)
  b.store(v1, v0, FieldId(1));  // type(v1) contains type(v0)
  const auto pag = std::move(b).finalize();

  const auto levels = compute_type_levels(pag);
  EXPECT_EQ(levels[0], 1u);
  EXPECT_EQ(levels[1], 2u);
  EXPECT_EQ(levels[2], 3u);
}

TEST(TypeLevels, RecursiveTypesCollapse) {
  // T0.f -> T1, T1.f -> T0 (mutual recursion): both land on the same level.
  pag::Pag::Builder b;
  b.set_counts(1, 0, 2, 1);
  const auto v0 = b.add_local(TypeId(0), MethodId(0));
  const auto v1 = b.add_local(TypeId(1), MethodId(0));
  b.store(v0, v1, FieldId(0));
  b.store(v1, v0, FieldId(0));
  const auto pag = std::move(b).finalize();
  const auto levels = compute_type_levels(pag);
  EXPECT_EQ(levels[0], levels[1]);
}

TEST(Schedule, GroupsFollowDirectRelation) {
  // a -assign- b, c -param- d, e isolated; loads do NOT connect.
  pag::Pag::Builder b;
  const auto a = b.add_local(TypeId(0), MethodId(0));
  const auto bb = b.add_local(TypeId(0), MethodId(0));
  const auto c = b.add_local(TypeId(0), MethodId(0));
  const auto d = b.add_local(TypeId(0), MethodId(1));
  const auto e = b.add_local(TypeId(0), MethodId(0));
  const auto f_dst = b.add_local(TypeId(0), MethodId(0));
  b.assign_local(bb, a);
  b.param(d, c, CallSiteId(0));
  b.load(f_dst, e, FieldId(0));  // e and f_dst stay separate groups
  const auto pag = std::move(b).finalize();

  const std::vector<NodeId> queries{a, bb, c, d, e, f_dst};
  SchedulingMetrics metrics;
  (void)schedule_queries(pag, queries, &metrics);

  EXPECT_EQ(metrics.group_of[0], metrics.group_of[1]);  // a with b
  EXPECT_EQ(metrics.group_of[2], metrics.group_of[3]);  // c with d
  EXPECT_NE(metrics.group_of[0], metrics.group_of[2]);
  EXPECT_NE(metrics.group_of[4], metrics.group_of[5]);  // ld does not group
}

TEST(Schedule, ConnectionDistanceOrdersWithinGroup) {
  // Chain a -> b -> c -> d plus a short stub s -> b. The chain members share
  // the longest path (4); the stub's CD is shorter only if it sits on no
  // longer path — s lies on path s->b->c->d (4 nodes too). Use a detached
  // two-node group instead to observe CD differences.
  pag::Pag::Builder b;
  const auto a = b.add_local(TypeId(0), MethodId(0));
  const auto b2 = b.add_local(TypeId(0), MethodId(0));
  const auto c = b.add_local(TypeId(0), MethodId(0));
  const auto d = b.add_local(TypeId(0), MethodId(0));
  b.assign_local(b2, a);
  b.assign_local(c, b2);
  b.assign_local(d, c);
  const auto pag = std::move(b).finalize();

  SchedulingMetrics metrics;
  const std::vector<NodeId> queries{a, b2, c, d};
  (void)schedule_queries(pag, queries, &metrics);
  // Everyone lies on the same longest path of 4 nodes.
  for (const auto cd : metrics.cd) EXPECT_EQ(cd, 4u);
}

TEST(Schedule, CdReflectsLongestPathThroughNode) {
  // y -> x and z -> x: x's CD is 2 (no 3-node path exists); y, z also 2.
  // Extend y's side: w -> y -> x gives w,y,x CD 3 and z CD 2.
  pag::Pag::Builder b;
  const auto w = b.add_local(TypeId(0), MethodId(0));
  const auto y = b.add_local(TypeId(0), MethodId(0));
  const auto z = b.add_local(TypeId(0), MethodId(0));
  const auto x = b.add_local(TypeId(0), MethodId(0));
  b.assign_local(y, w);
  b.assign_local(x, y);
  b.assign_local(x, z);
  const auto pag = std::move(b).finalize();

  SchedulingMetrics metrics;
  const std::vector<NodeId> queries{w, y, z, x};
  (void)schedule_queries(pag, queries, &metrics);
  EXPECT_EQ(metrics.cd[0], 3u);  // w
  EXPECT_EQ(metrics.cd[1], 3u);  // y
  EXPECT_EQ(metrics.cd[2], 2u);  // z
  EXPECT_EQ(metrics.cd[3], 3u);  // x
}

TEST(Schedule, CdHandlesAssignCyclesModuloRecursion) {
  pag::Pag::Builder b;
  const auto a = b.add_local(TypeId(0), MethodId(0));
  const auto c = b.add_local(TypeId(0), MethodId(0));
  const auto d = b.add_local(TypeId(0), MethodId(0));
  b.assign_local(c, a);
  b.assign_local(a, c);  // cycle {a, c}
  b.assign_local(d, c);
  const auto pag = std::move(b).finalize();

  SchedulingMetrics metrics;
  const std::vector<NodeId> queries{a, c, d};
  (void)schedule_queries(pag, queries, &metrics);
  // SCC {a,c} counts its 2 members once; longest path is {a,c}+d = 3 nodes.
  EXPECT_EQ(metrics.cd[0], 3u);
  EXPECT_EQ(metrics.cd[2], 3u);
}

TEST(Schedule, DeeperTypesScheduleFirst) {
  // Group A holds a variable of a deep type (L=3); group B a shallow one
  // (L=1). A's DD (1/3) is smaller, so A is issued first.
  pag::Pag::Builder b;
  b.set_counts(2, 0, 3, 1);
  const auto t2a = b.add_local(TypeId(2), MethodId(0));
  const auto t2b = b.add_local(TypeId(2), MethodId(0));
  const auto t0a = b.add_local(TypeId(0), MethodId(0));
  const auto t0b = b.add_local(TypeId(0), MethodId(0));
  // Containment chain: T2 > T1 > T0.
  const auto v1 = b.add_local(TypeId(1), MethodId(0));
  b.store(t2a, v1, FieldId(0));
  b.store(v1, t0a, FieldId(1));
  // Grouping edges.
  b.assign_local(t2b, t2a);
  b.assign_local(t0b, t0a);
  const auto pag = std::move(b).finalize();

  const std::vector<NodeId> queries{t0a, t0b, t2a, t2b};
  const auto schedule = schedule_queries(pag, queries);
  // The deep-type group (t2a, t2b) must come first in issue order.
  const auto pos = [&](NodeId n) {
    return std::find(schedule.ordered.begin(), schedule.ordered.end(), n) -
           schedule.ordered.begin();
  };
  EXPECT_LT(pos(t2a), pos(t0a));
  EXPECT_LT(pos(t2b), pos(t0b));
}

TEST(Schedule, UnitsCoverAllQueriesOnce) {
  const auto fx = test::fig2();
  const auto schedule = schedule_queries(fx.lowered.pag, fx.lowered.queries);
  std::vector<NodeId> seen;
  for (const auto [begin, end] : schedule.units)
    for (std::uint32_t i = begin; i < end; ++i) seen.push_back(schedule.ordered[i]);
  EXPECT_EQ(seen.size(), fx.lowered.queries.size());
  auto sorted_seen = seen;
  std::sort(sorted_seen.begin(), sorted_seen.end());
  auto sorted_queries = fx.lowered.queries;
  std::sort(sorted_queries.begin(), sorted_queries.end());
  EXPECT_EQ(sorted_seen, sorted_queries);
  EXPECT_GT(schedule.mean_group_size, 0.0);
}

TEST(Schedule, IdentityPreservesOrder) {
  const std::vector<NodeId> queries{NodeId(3), NodeId(1), NodeId(2)};
  const auto s = identity_schedule(queries);
  EXPECT_EQ(s.ordered, queries);
  EXPECT_EQ(s.units.size(), 3u);
  EXPECT_EQ(s.units[1], (std::pair<std::uint32_t, std::uint32_t>{1, 2}));
}

TEST(Schedule, EmptyQueries) {
  pag::Pag::Builder b;
  b.add_local(TypeId(0), MethodId(0));
  const auto pag = std::move(b).finalize();
  const auto s = schedule_queries(pag, {});
  EXPECT_TRUE(s.ordered.empty());
  EXPECT_TRUE(s.units.empty());
}

}  // namespace
}  // namespace parcfl::cfl
