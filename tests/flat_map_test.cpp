// Tests for the hot-path flat tables (FlatSet / FlatMap / FlatKV), the
// epoch-reset + slab machinery behind Solver query state, and the two
// end-to-end guarantees the overhaul must preserve: identical answers in all
// four engine modes, and an allocation-free steady state for repeated query
// batches on one solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "cfl/engine.hpp"
#include "cfl/solver.hpp"
#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "support/flat_map.hpp"
#include "support/flat_set.hpp"
#include "support/slab.hpp"
#include "synth/generator.hpp"
#include "test_util.hpp"

namespace parcfl {
namespace {

using support::FlatKV;
using support::FlatMap;
using support::FlatSet;

// ---- FlatSet -------------------------------------------------------------

TEST(FlatSet, InsertContainsAndGrowth) {
  FlatSet set;
  std::mt19937_64 rng(123);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng());

  for (std::uint64_t k : keys) EXPECT_TRUE(set.insert(k));
  EXPECT_EQ(set.size(), keys.size());
  EXPECT_GT(set.rehash_count(), 0u) << "5000 keys must outgrow the seed table";

  for (std::uint64_t k : keys) {
    EXPECT_TRUE(set.contains(k));
    EXPECT_FALSE(set.insert(k)) << "duplicate insert must report not-new";
  }
  EXPECT_EQ(set.size(), keys.size());

  std::mt19937_64 probe(456);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t k = probe();
    const bool expected = std::find(keys.begin(), keys.end(), k) != keys.end();
    EXPECT_EQ(set.contains(k), expected);
  }
}

TEST(FlatSet, AdversarialClusteredKeys) {
  // Solver keys are (node << 32) | ctx with tiny node/ctx ranges — maximally
  // clustered low-entropy keys. The mixer must still spread them.
  FlatSet set;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t node = 0; node < 64; ++node)
    for (std::uint64_t ctx = 0; ctx < 64; ++ctx)
      keys.push_back((node << 32) | ctx);

  for (std::uint64_t k : keys) ASSERT_TRUE(set.insert(k));
  for (std::uint64_t k : keys) ASSERT_TRUE(set.contains(k));
  EXPECT_FALSE(set.contains((64ull << 32) | 0));
  EXPECT_EQ(set.size(), keys.size());
}

TEST(FlatSet, KeyZeroIsAValidKey) {
  FlatSet set;
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  EXPECT_FALSE(set.insert(0));
  set.clear();
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
}

TEST(FlatSet, EpochClearForgetsEverythingWithoutRehashing) {
  FlatSet set;
  set.reserve(4096);
  const std::uint64_t rehashes_after_reserve = set.rehash_count();

  std::mt19937_64 rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 3000; ++i) keys.push_back(rng());
    for (std::uint64_t k : keys) ASSERT_TRUE(set.insert(k));
    for (std::uint64_t k : keys) ASSERT_TRUE(set.contains(k));
    set.clear();
    EXPECT_EQ(set.size(), 0u);
    for (std::uint64_t k : keys)
      ASSERT_FALSE(set.contains(k)) << "stale hit after epoch clear";
  }
  EXPECT_EQ(set.rehash_count(), rehashes_after_reserve)
      << "steady-state clear/insert cycles must not grow the table";
}

// ---- FlatMap -------------------------------------------------------------

TEST(FlatMap, TryEmplaceFindAndValueSurvivesRehash) {
  FlatMap<std::uint32_t> map;
  std::mt19937_64 rng(99);
  std::map<std::uint64_t, std::uint32_t> reference;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = rng();
    auto slot = map.try_emplace(k);
    if (slot.inserted) slot.value = static_cast<std::uint32_t>(i);
    reference.emplace(k, static_cast<std::uint32_t>(i));
  }
  EXPECT_GT(map.rehash_count(), 0u);
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [k, v] : reference) {
    const std::uint32_t* found = map.find(k);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, v) << "value lost across rehash";
  }
  EXPECT_EQ(map.find(~0ull), nullptr);
}

TEST(FlatMap, InsertOnlyContractFirstValueWins) {
  FlatMap<std::uint32_t> map;
  auto first = map.try_emplace(42, 7);
  ASSERT_TRUE(first.inserted);
  EXPECT_EQ(first.value, 7u);
  auto second = map.try_emplace(42, 999);
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(second.value, 7u) << "try_emplace must not overwrite";
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, EpochClearThenReuse) {
  FlatMap<std::uint32_t> map;
  for (std::uint64_t k = 0; k < 100; ++k) map.try_emplace(k, 1);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(map.find(k), nullptr);
  // Re-inserting after clear default-initialises fresh values.
  auto slot = map.try_emplace(5, 2);
  EXPECT_TRUE(slot.inserted);
  EXPECT_EQ(slot.value, 2u);
}

TEST(FlatMap, ForEachVisitsExactlyTheLiveEntries) {
  FlatMap<std::uint32_t> map;
  map.try_emplace(10, 1);
  map.try_emplace(20, 2);
  map.clear();
  map.try_emplace(30, 3);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> seen;
  map.for_each([&](std::uint64_t k, std::uint32_t& v) { seen.emplace_back(k, v); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 30u);
  EXPECT_EQ(seen[0].second, 3u);
}

// ---- FlatKV (generic-key table used by ShardedMap shards) ---------------

TEST(FlatKV, NonTrivialValuesAndClear) {
  FlatKV<std::uint64_t, std::string> kv;
  for (std::uint64_t k = 0; k < 500; ++k) {
    auto [value, inserted] = kv.try_emplace(k * 1024);
    ASSERT_TRUE(inserted);
    *value = "v" + std::to_string(k);
  }
  EXPECT_EQ(kv.size(), 500u);
  for (std::uint64_t k = 0; k < 500; ++k) {
    const std::string* v = kv.find(k * 1024);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, "v" + std::to_string(k));
  }
  EXPECT_EQ(kv.find(1), nullptr);

  std::size_t visited = 0;
  kv.for_each([&](const std::uint64_t&, const std::string&) { ++visited; });
  EXPECT_EQ(visited, 500u);

  kv.clear();
  EXPECT_EQ(kv.size(), 0u);
  EXPECT_EQ(kv.find(0), nullptr);
  auto [value, inserted] = kv.try_emplace(0);
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(value->empty()) << "clear must reset recycled values";
}

// ---- Slab ----------------------------------------------------------------

TEST(Slab, AddressesStableAndRecycledAcrossReset) {
  support::Slab<std::vector<int>> slab;
  auto [i0, v0] = slab.acquire();
  auto [i1, v1] = slab.acquire();
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  v0->assign({1, 2, 3});
  v1->reserve(64);
  std::vector<int>* const p0 = v0;
  std::vector<int>* const p1 = v1;

  slab.reset();
  EXPECT_EQ(slab.used(), 0u);
  auto [r0, w0] = slab.acquire();
  auto [r1, w1] = slab.acquire();
  EXPECT_EQ(r0, 0u);
  EXPECT_EQ(r1, 1u);
  EXPECT_EQ(w0, p0) << "reset must recycle the same objects in order";
  EXPECT_EQ(w1, p1);
  EXPECT_GE(w1->capacity(), 64u) << "recycling must keep buffer capacity";
  EXPECT_EQ(slab.constructed(), 2u);
  auto [r2, w2] = slab.acquire();
  EXPECT_EQ(r2, 2u);
  EXPECT_EQ(slab.constructed(), 3u);
  EXPECT_EQ(&slab[0], p0);
}

// ---- End-to-end: all four modes agree, including full object sets --------

struct Workload {
  pag::Pag pag;
  std::vector<pag::NodeId> queries;
};

Workload medium_workload() {
  synth::GeneratorConfig cfg;
  cfg.seed = 77;
  cfg.app_methods = 14;
  cfg.library_methods = 14;
  cfg.containers = 3;
  cfg.container_use_blocks = 12;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<pag::NodeId> queries;
  for (const pag::NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

using OutcomeKey = std::pair<cfl::QueryStatus, std::vector<pag::NodeId>>;

std::map<std::uint32_t, OutcomeKey> outcomes_by_var(const cfl::EngineResult& r) {
  std::map<std::uint32_t, OutcomeKey> m;
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    std::vector<pag::NodeId> objs = r.objects[i];
    std::sort(objs.begin(), objs.end());
    m[r.outcomes[i].var.value()] = {r.outcomes[i].status, std::move(objs)};
  }
  return m;
}

TEST(FlatTablesEndToEnd, AllFourModesProduceIdenticalOutcomes) {
  const Workload w = medium_workload();
  ASSERT_GE(w.queries.size(), 8u);

  auto run = [&](cfl::Mode mode, unsigned threads) {
    cfl::EngineOptions o;
    o.mode = mode;
    o.threads = threads;
    o.collect_objects = true;
    o.solver.budget = 200'000;
    o.solver.tau_finished = 10;
    o.solver.tau_unfinished = 100;
    cfl::Engine engine(w.pag, o);
    return outcomes_by_var(engine.run(w.queries));
  };

  const auto baseline = run(cfl::Mode::kSequential, 1);
  ASSERT_EQ(baseline.size(), w.queries.size());

  const struct {
    cfl::Mode mode;
    unsigned threads;
    const char* name;
  } configs[] = {
      {cfl::Mode::kNaive, 4, "ParCFL_naive"},
      {cfl::Mode::kDataSharing, 4, "ParCFL_D"},
      {cfl::Mode::kDataSharingScheduling, 4, "ParCFL_DQ"},
  };
  for (const auto& c : configs) {
    const auto got = run(c.mode, c.threads);
    ASSERT_EQ(got.size(), baseline.size()) << c.name;
    for (const auto& [var, expected] : baseline) {
      const auto it = got.find(var);
      ASSERT_NE(it, got.end()) << c.name << " lost var " << var;
      EXPECT_EQ(it->second.first, expected.first)
          << c.name << " status differs for var " << var;
      EXPECT_EQ(it->second.second, expected.second)
          << c.name << " object set differs for var " << var;
    }
  }
}

// ---- Zero allocations in the steady-state query loop ---------------------

TEST(FlatTablesEndToEnd, RepeatedBatchesAreAllocationFree) {
  const Workload w = medium_workload();
  cfl::ContextTable contexts;
  cfl::SolverOptions opts;
  opts.budget = 50'000;
  cfl::Solver solver(w.pag, contexts, /*store=*/nullptr, opts);

  cfl::QueryResult qr;
  std::vector<pag::NodeId> nodes;
  auto run_batch = [&] {
    for (const pag::NodeId q : w.queries) {
      solver.points_to(q, qr);
      qr.nodes_into(nodes);
    }
  };

  // Warm up: tables grow, slabs fill, scratch vectors reach their high-water
  // capacity. Two rounds so second-round growth (if any) also settles.
  run_batch();
  run_batch();

  const cfl::Solver::MemoryStats settled = solver.memory_stats();
  for (int round = 0; round < 3; ++round) {
    run_batch();
    const cfl::Solver::MemoryStats now = solver.memory_stats();
    EXPECT_EQ(now.table_rehashes, settled.table_rehashes)
        << "round " << round << ": a memo/result table grew mid-steady-state";
    EXPECT_EQ(now.slab_objects, settled.slab_objects)
        << "round " << round << ": slab allocated new entries";
    EXPECT_EQ(now.slab_bytes, settled.slab_bytes);
    EXPECT_EQ(now.frame_count, settled.frame_count);
    EXPECT_EQ(now.scratch_capacity_bytes, settled.scratch_capacity_bytes)
        << "round " << round << ": a pooled scratch vector reallocated";
    EXPECT_TRUE(now == settled);
  }
}

}  // namespace
}  // namespace parcfl
