// Engine-level property suite over random synthetic workloads: all four
// paper configurations and every thread count must produce identical
// answers when the budget is ample, and their statistics must satisfy the
// structural invariants the benches rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cfl/engine.hpp"
#include "cfl/grammar.hpp"
#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "pag/reduce.hpp"
#include "synth/generator.hpp"

namespace parcfl::cfl {
namespace {

using pag::NodeId;

struct Workload {
  pag::Pag pag;
  std::vector<NodeId> queries;
};

Workload make_workload(std::uint64_t seed) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 10 + seed % 7;
  cfg.library_methods = 10 + seed % 5;
  cfg.containers = 2 + seed % 3;
  cfg.container_use_blocks = 6 + seed % 8;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

EngineOptions opts(Mode mode, unsigned threads) {
  EngineOptions o;
  o.mode = mode;
  o.threads = threads;
  o.solver.budget = 5'000'000;
  o.solver.tau_finished = 5;
  o.solver.tau_unfinished = 50;
  o.collect_objects = true;
  return o;
}

std::map<std::uint32_t, std::vector<NodeId>> answer_map(const EngineResult& r) {
  std::map<std::uint32_t, std::vector<NodeId>> m;
  for (std::size_t i = 0; i < r.outcomes.size(); ++i)
    m[r.outcomes[i].var.value()] = r.objects[i];
  return m;
}

class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePropertyTest, AllModesAndThreadCountsAgree) {
  const auto w = make_workload(GetParam());
  const auto seq = Engine(w.pag, opts(Mode::kSequential, 1)).run(w.queries);
  const auto want = answer_map(seq);

  // Every query completed (the budget is ample) — otherwise agreement is
  // only guaranteed per DESIGN.md's budget-accounting note.
  for (const auto& qo : seq.outcomes)
    ASSERT_EQ(qo.status, QueryStatus::kComplete);

  for (const Mode mode :
       {Mode::kNaive, Mode::kDataSharing, Mode::kDataSharingScheduling}) {
    for (const unsigned threads : {1u, 3u, 8u}) {
      const auto r = Engine(w.pag, opts(mode, threads)).run(w.queries);
      EXPECT_EQ(answer_map(r), want)
          << to_string(mode) << " threads=" << threads << " seed=" << GetParam();
    }
  }
}

TEST_P(EnginePropertyTest, StatisticsInvariants) {
  const auto w = make_workload(GetParam() + 50);
  const auto seq = Engine(w.pag, opts(Mode::kSequential, 1)).run(w.queries);
  const auto d = Engine(w.pag, opts(Mode::kDataSharing, 4)).run(w.queries);

  // Sequential: no sharing artefacts at all.
  EXPECT_EQ(seq.totals.saved_steps, 0u);
  EXPECT_EQ(seq.totals.jmps_taken, 0u);
  EXPECT_EQ(seq.jmp_stats.total_jmps(), 0u);
  EXPECT_EQ(seq.totals.charged_steps, seq.totals.traversed_steps);

  // Sharing: work never exceeds the sequential baseline's (the budget is
  // ample, so every traversal it skips is one the baseline performed).
  EXPECT_LE(d.totals.traversed_steps, seq.totals.traversed_steps);
  // jmps taken implies jmps added by someone.
  if (d.totals.jmps_taken > 0) {
    EXPECT_GT(d.jmp_stats.finished_edges, 0u);
  }
  // Per-thread accounting adds up.
  std::uint64_t sum = 0;
  for (const auto t : d.per_thread_traversed) sum += t;
  EXPECT_EQ(sum, d.totals.traversed_steps);
  // Outcome charges sum to the total charged steps.
  std::uint64_t charged = 0;
  for (const auto& qo : d.outcomes) charged += qo.charged_steps;
  EXPECT_EQ(charged, d.totals.charged_steps);
}

TEST_P(EnginePropertyTest, SchedulingIsAPermutation) {
  const auto w = make_workload(GetParam() + 100);
  const auto dq =
      Engine(w.pag, opts(Mode::kDataSharingScheduling, 2)).run(w.queries);
  std::vector<std::uint32_t> got;
  for (const auto& qo : dq.outcomes) got.push_back(qo.var.value());
  std::sort(got.begin(), got.end());
  std::vector<std::uint32_t> want;
  for (const NodeId q : w.queries) want.push_back(q.value());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  EXPECT_GT(dq.group_count, 0u);
}

TEST_P(EnginePropertyTest, TightBudgetStatusesAreConsistent) {
  const auto w = make_workload(GetParam() + 150);
  EngineOptions o = opts(Mode::kDataSharing, 2);
  o.solver.budget = 200;  // most interesting queries die
  const auto r = Engine(w.pag, o).run(w.queries);
  for (const auto& qo : r.outcomes) {
    // Status and charge must cohere: completion within budget, exhaustion at
    // or slightly above it (the final step overshoots by at most one
    // ReachableNodes charge), early termination strictly below.
    if (qo.status == QueryStatus::kComplete) {
      EXPECT_LE(qo.charged_steps, o.solver.budget);
    } else if (qo.status == QueryStatus::kOutOfBudget) {
      EXPECT_GT(qo.charged_steps, o.solver.budget / 2);
    } else {
      EXPECT_LE(qo.charged_steps, o.solver.budget);
    }
  }
}

// Metamorphic check for the pre-solve reduction (pag/reduce.hpp): dropping
// never-matchable parenthesis edges must leave every answer identical in all
// four engine configurations, both cold (fresh jmp state) and warm (second
// run over the state the cold run minted). The unreduced sequential run is
// the ground truth.
TEST_P(EnginePropertyTest, ReductionPreservesAnswersAllModesWarmAndCold) {
  const auto w = make_workload(GetParam() + 200);
  pag::ReduceStats stats;
  const pag::Pag reduced = pag::reduce_unmatched_parens(w.pag, &stats);
  ASSERT_EQ(reduced.node_count(), w.pag.node_count());
  ASSERT_EQ(reduced.edge_count(), stats.edges_after());

  const auto seq = Engine(w.pag, opts(Mode::kSequential, 1)).run(w.queries);
  const auto want = answer_map(seq);
  for (const auto& qo : seq.outcomes)
    ASSERT_EQ(qo.status, QueryStatus::kComplete);

  for (const Mode mode : {Mode::kSequential, Mode::kNaive, Mode::kDataSharing,
                          Mode::kDataSharingScheduling}) {
    Engine engine(reduced, opts(mode, 4));
    ContextTable contexts;
    JmpStore store;
    const auto cold = engine.run(w.queries, contexts, store);
    EXPECT_EQ(answer_map(cold), want)
        << "cold " << to_string(mode) << " seed=" << GetParam();
    const auto warm = engine.run(w.queries, contexts, store);
    EXPECT_EQ(answer_map(warm), want)
        << "warm " << to_string(mode) << " seed=" << GetParam();
  }

  // The whole point: the reduced graph is never more work. Sequential runs
  // are deterministic, so the comparison is exact, not statistical.
  const auto red_seq = Engine(reduced, opts(Mode::kSequential, 1)).run(w.queries);
  EXPECT_LE(red_seq.totals.traversed_steps, seq.totals.traversed_steps);
}

// Under a tight budget the reduction can only help: a query that completed
// on the faithful graph must still complete on the reduced one (with the
// same objects, for no more charge), because every removed edge was provably
// off all derivations — the traversal skips dead branches it used to pay for.
TEST_P(EnginePropertyTest, ReductionNeverHurtsBudgetedQueries) {
  const auto w = make_workload(GetParam() + 250);
  const pag::Pag reduced = pag::reduce_unmatched_parens(w.pag);

  EngineOptions o = opts(Mode::kSequential, 1);
  o.solver.budget = 300;  // most interesting queries die on the full graph
  const auto full = Engine(w.pag, o).run(w.queries);
  const auto red = Engine(reduced, o).run(w.queries);
  const auto full_answers = answer_map(full);
  const auto red_answers = answer_map(red);

  ASSERT_EQ(full.outcomes.size(), red.outcomes.size());
  for (std::size_t i = 0; i < full.outcomes.size(); ++i) {
    const auto& f = full.outcomes[i];
    const auto& r = red.outcomes[i];
    ASSERT_EQ(f.var, r.var);  // identity schedule: same order
    if (f.status != QueryStatus::kComplete) continue;
    EXPECT_EQ(r.status, QueryStatus::kComplete)
        << "var " << f.var.value() << " seed=" << GetParam();
    EXPECT_LE(r.charged_steps, f.charged_steps)
        << "var " << f.var.value() << " seed=" << GetParam();
    EXPECT_EQ(red_answers.at(r.var.value()), full_answers.at(f.var.value()))
        << "var " << f.var.value() << " seed=" << GetParam();
  }
}

// Metamorphic check for the compiled grammar tables (cfl/grammar.hpp,
// DESIGN.md §15): driving the generic table walker with the pointer grammar
// (EngineOptions::grammar) must reproduce the hard-coded fast path exactly —
// every answer, in all four engine configurations, both cold (fresh jmp
// state) and warm (second run over the state the cold run minted). The
// hard-coded sequential run is the ground truth.
TEST_P(EnginePropertyTest, GenericPointerGrammarMatchesFastPathAllModesWarmAndCold) {
  const auto w = make_workload(GetParam() + 300);
  const auto seq = Engine(w.pag, opts(Mode::kSequential, 1)).run(w.queries);
  const auto want = answer_map(seq);
  for (const auto& qo : seq.outcomes)
    ASSERT_EQ(qo.status, QueryStatus::kComplete);

  for (const Mode mode : {Mode::kSequential, Mode::kNaive, Mode::kDataSharing,
                          Mode::kDataSharingScheduling}) {
    EngineOptions o = opts(mode, 4);
    o.grammar = &pointer_backward_table();
    Engine engine(w.pag, o);
    ContextTable contexts;
    JmpStore store;
    const auto cold = engine.run(w.queries, contexts, store);
    EXPECT_EQ(answer_map(cold), want)
        << "cold " << to_string(mode) << " seed=" << GetParam();
    const auto warm = engine.run(w.queries, contexts, store);
    EXPECT_EQ(answer_map(warm), want)
        << "warm " << to_string(mode) << " seed=" << GetParam();
  }
}

// Budget monotonicity holds on the generic path exactly as on the fast path:
// a tighter budget yields a subset of the ample answer per query, and a
// query that completes under the tight budget found the full answer.
// Sequential mode keeps both runs deterministic.
TEST_P(EnginePropertyTest, GenericPathBudgetMonotonicity) {
  const auto w = make_workload(GetParam() + 350);

  EngineOptions ample = opts(Mode::kSequential, 1);
  ample.grammar = &pointer_backward_table();
  EngineOptions tight = ample;
  tight.solver.budget = 300;

  const auto full = Engine(w.pag, ample).run(w.queries);
  const auto cut = Engine(w.pag, tight).run(w.queries);
  const auto full_answers = answer_map(full);

  ASSERT_EQ(cut.outcomes.size(), full.outcomes.size());
  for (std::size_t i = 0; i < cut.outcomes.size(); ++i) {
    const auto& qo = cut.outcomes[i];
    ASSERT_EQ(qo.var, full.outcomes[i].var);  // identity schedule: same order
    ASSERT_EQ(full.outcomes[i].status, QueryStatus::kComplete);
    const auto& small = cut.objects[i];
    const auto& big = full_answers.at(qo.var.value());
    EXPECT_TRUE(std::includes(big.begin(), big.end(), small.begin(), small.end()))
        << "var " << qo.var.value() << " seed=" << GetParam();
    if (qo.status == QueryStatus::kComplete) {
      EXPECT_EQ(small, big) << "var " << qo.var.value() << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace parcfl::cfl
