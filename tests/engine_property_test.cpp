// Engine-level property suite over random synthetic workloads: all four
// paper configurations and every thread count must produce identical
// answers when the budget is ample, and their statistics must satisfy the
// structural invariants the benches rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cfl/engine.hpp"
#include "frontend/lower.hpp"
#include "pag/collapse.hpp"
#include "synth/generator.hpp"

namespace parcfl::cfl {
namespace {

using pag::NodeId;

struct Workload {
  pag::Pag pag;
  std::vector<NodeId> queries;
};

Workload make_workload(std::uint64_t seed) {
  synth::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.app_methods = 10 + seed % 7;
  cfg.library_methods = 10 + seed % 5;
  cfg.containers = 2 + seed % 3;
  cfg.container_use_blocks = 6 + seed % 8;
  const auto lowered = frontend::lower(synth::generate(cfg));
  auto collapsed = pag::collapse_assign_cycles(lowered.pag);
  std::vector<NodeId> queries;
  for (const NodeId q : lowered.queries)
    queries.push_back(collapsed.representative[q.value()]);
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  return Workload{std::move(collapsed.pag), std::move(queries)};
}

EngineOptions opts(Mode mode, unsigned threads) {
  EngineOptions o;
  o.mode = mode;
  o.threads = threads;
  o.solver.budget = 5'000'000;
  o.solver.tau_finished = 5;
  o.solver.tau_unfinished = 50;
  o.collect_objects = true;
  return o;
}

std::map<std::uint32_t, std::vector<NodeId>> answer_map(const EngineResult& r) {
  std::map<std::uint32_t, std::vector<NodeId>> m;
  for (std::size_t i = 0; i < r.outcomes.size(); ++i)
    m[r.outcomes[i].var.value()] = r.objects[i];
  return m;
}

class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePropertyTest, AllModesAndThreadCountsAgree) {
  const auto w = make_workload(GetParam());
  const auto seq = Engine(w.pag, opts(Mode::kSequential, 1)).run(w.queries);
  const auto want = answer_map(seq);

  // Every query completed (the budget is ample) — otherwise agreement is
  // only guaranteed per DESIGN.md's budget-accounting note.
  for (const auto& qo : seq.outcomes)
    ASSERT_EQ(qo.status, QueryStatus::kComplete);

  for (const Mode mode :
       {Mode::kNaive, Mode::kDataSharing, Mode::kDataSharingScheduling}) {
    for (const unsigned threads : {1u, 3u, 8u}) {
      const auto r = Engine(w.pag, opts(mode, threads)).run(w.queries);
      EXPECT_EQ(answer_map(r), want)
          << to_string(mode) << " threads=" << threads << " seed=" << GetParam();
    }
  }
}

TEST_P(EnginePropertyTest, StatisticsInvariants) {
  const auto w = make_workload(GetParam() + 50);
  const auto seq = Engine(w.pag, opts(Mode::kSequential, 1)).run(w.queries);
  const auto d = Engine(w.pag, opts(Mode::kDataSharing, 4)).run(w.queries);

  // Sequential: no sharing artefacts at all.
  EXPECT_EQ(seq.totals.saved_steps, 0u);
  EXPECT_EQ(seq.totals.jmps_taken, 0u);
  EXPECT_EQ(seq.jmp_stats.total_jmps(), 0u);
  EXPECT_EQ(seq.totals.charged_steps, seq.totals.traversed_steps);

  // Sharing: work never exceeds the sequential baseline's (the budget is
  // ample, so every traversal it skips is one the baseline performed).
  EXPECT_LE(d.totals.traversed_steps, seq.totals.traversed_steps);
  // jmps taken implies jmps added by someone.
  if (d.totals.jmps_taken > 0) EXPECT_GT(d.jmp_stats.finished_edges, 0u);
  // Per-thread accounting adds up.
  std::uint64_t sum = 0;
  for (const auto t : d.per_thread_traversed) sum += t;
  EXPECT_EQ(sum, d.totals.traversed_steps);
  // Outcome charges sum to the total charged steps.
  std::uint64_t charged = 0;
  for (const auto& qo : d.outcomes) charged += qo.charged_steps;
  EXPECT_EQ(charged, d.totals.charged_steps);
}

TEST_P(EnginePropertyTest, SchedulingIsAPermutation) {
  const auto w = make_workload(GetParam() + 100);
  const auto dq =
      Engine(w.pag, opts(Mode::kDataSharingScheduling, 2)).run(w.queries);
  std::vector<std::uint32_t> got;
  for (const auto& qo : dq.outcomes) got.push_back(qo.var.value());
  std::sort(got.begin(), got.end());
  std::vector<std::uint32_t> want;
  for (const NodeId q : w.queries) want.push_back(q.value());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  EXPECT_GT(dq.group_count, 0u);
}

TEST_P(EnginePropertyTest, TightBudgetStatusesAreConsistent) {
  const auto w = make_workload(GetParam() + 150);
  EngineOptions o = opts(Mode::kDataSharing, 2);
  o.solver.budget = 200;  // most interesting queries die
  const auto r = Engine(w.pag, o).run(w.queries);
  for (const auto& qo : r.outcomes) {
    // Status and charge must cohere: completion within budget, exhaustion at
    // or slightly above it (the final step overshoots by at most one
    // ReachableNodes charge), early termination strictly below.
    if (qo.status == QueryStatus::kComplete) {
      EXPECT_LE(qo.charged_steps, o.solver.budget);
    } else if (qo.status == QueryStatus::kOutOfBudget) {
      EXPECT_GT(qo.charged_steps, o.solver.budget / 2);
    } else {
      EXPECT_LE(qo.charged_steps, o.solver.budget);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace parcfl::cfl
