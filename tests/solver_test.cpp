// Demand-solver correctness on hand-built programs, including the paper's
// Fig. 2 running example with the paper-stated expected answers.

#include <gtest/gtest.h>

#include "andersen/andersen.hpp"
#include "cfl/solver.hpp"
#include "pag/collapse.hpp"
#include "test_util.hpp"

namespace parcfl {
namespace {

using cfl::ContextTable;
using cfl::QueryStatus;
using cfl::Solver;
using cfl::SolverOptions;
using pag::NodeId;

SolverOptions unlimited(bool context_sensitive = true) {
  SolverOptions o;
  o.budget = 100'000'000;
  o.context_sensitive = context_sensitive;
  return o;
}

std::vector<std::uint32_t> object_ids(const cfl::QueryResult& r) {
  std::vector<std::uint32_t> out;
  for (const NodeId n : r.nodes()) out.push_back(n.value());
  return out;
}

TEST(SolverFig2, ContextSensitiveDistinguishesClients) {
  const auto f = test::fig2();
  ContextTable contexts;
  Solver solver(f.lowered.pag, contexts, nullptr, unlimited());

  // Paper §II-B2: s1 points to o16 along a realisable path; o20's path to s1
  // is unrealisable.
  const auto r1 = solver.points_to(f.s1);
  ASSERT_EQ(r1.status, QueryStatus::kComplete);
  EXPECT_TRUE(r1.contains(f.o16));
  EXPECT_FALSE(r1.contains(f.o20));

  const auto r2 = solver.points_to(f.s2);
  ASSERT_EQ(r2.status, QueryStatus::kComplete);
  EXPECT_TRUE(r2.contains(f.o20));
  EXPECT_FALSE(r2.contains(f.o16));
}

TEST(SolverFig2, ContextInsensitiveConflatesClients) {
  const auto f = test::fig2();
  ContextTable contexts;
  Solver solver(f.lowered.pag, contexts, nullptr, unlimited(false));

  const auto r1 = solver.points_to(f.s1);
  ASSERT_EQ(r1.status, QueryStatus::kComplete);
  EXPECT_TRUE(r1.contains(f.o16));
  EXPECT_TRUE(r1.contains(f.o20));  // conflated without context matching
}

TEST(SolverFig2, DirectAllocationsAndBases) {
  const auto f = test::fig2();
  ContextTable contexts;
  Solver solver(f.lowered.pag, contexts, nullptr, unlimited());

  const auto rv1 = solver.points_to(f.v1);
  EXPECT_EQ(object_ids(rv1), std::vector<std::uint32_t>{f.o15.value()});
  const auto rn1 = solver.points_to(f.n1);
  EXPECT_EQ(object_ids(rn1), std::vector<std::uint32_t>{f.o16.value()});
}

TEST(SolverFig2, FlowsToIsInverseOfPointsTo) {
  const auto f = test::fig2();
  ContextTable contexts;
  Solver solver(f.lowered.pag, contexts, nullptr, unlimited());

  // o16 flows to n1, add's e/… and s1 but not s2.
  const auto r = solver.flows_to(f.o16);
  ASSERT_EQ(r.status, QueryStatus::kComplete);
  EXPECT_TRUE(r.contains(f.n1));
  EXPECT_TRUE(r.contains(f.s1));
  EXPECT_FALSE(r.contains(f.s2));
}

TEST(SolverFig2, MayAlias) {
  const auto f = test::fig2();
  ContextTable contexts;
  Solver solver(f.lowered.pag, contexts, nullptr, unlimited());

  EXPECT_EQ(solver.may_alias(f.s1, f.n1), Solver::AliasAnswer::kMay);
  EXPECT_EQ(solver.may_alias(f.s1, f.n2), Solver::AliasAnswer::kNo);
  EXPECT_EQ(solver.may_alias(f.v1, f.v2), Solver::AliasAnswer::kNo);
}

TEST(SolverFig2, AgreesWithAndersenWhenContextInsensitive) {
  const auto f = test::fig2();
  const auto andersen = andersen::solve(f.lowered.pag);
  ContextTable contexts;
  Solver solver(f.lowered.pag, contexts, nullptr, unlimited(false));

  for (const NodeId v : test::all_variables(f.lowered.pag)) {
    const auto r = solver.points_to(v);
    ASSERT_EQ(r.status, QueryStatus::kComplete);
    const auto got = object_ids(r);
    const auto want = andersen.points_to(v);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << "CI demand result differs from Andersen at node " << v.value()
        << " (" << f.lowered.pag.name(v) << ")";
  }
}

TEST(SolverFig2, ContextSensitiveIsSubsetOfAndersen) {
  const auto f = test::fig2();
  const auto andersen = andersen::solve(f.lowered.pag);
  ContextTable contexts;
  Solver solver(f.lowered.pag, contexts, nullptr, unlimited());

  for (const NodeId v : test::all_variables(f.lowered.pag)) {
    const auto r = solver.points_to(v);
    ASSERT_EQ(r.status, QueryStatus::kComplete);
    for (const std::uint32_t o : object_ids(r))
      EXPECT_TRUE(andersen.points_to(v, NodeId(o)))
          << "CS found object " << o << " Andersen lacks at " << v.value();
  }
}

// ---- budget behaviour -------------------------------------------------------

TEST(SolverBudget, TinyBudgetRunsOut) {
  const auto f = test::fig2();
  ContextTable contexts;
  SolverOptions o = unlimited();
  o.budget = 3;
  Solver solver(f.lowered.pag, contexts, nullptr, o);
  const auto r = solver.points_to(f.s1);
  EXPECT_EQ(r.status, QueryStatus::kOutOfBudget);
}

TEST(SolverBudget, StepsAreCountedAndBudgetMonotone) {
  const auto f = test::fig2();
  // The charged step count of a completed query must not depend on budget.
  std::uint64_t charged_small = 0, charged_large = 0;
  {
    ContextTable contexts;
    SolverOptions o = unlimited();
    o.budget = 100'000;
    Solver solver(f.lowered.pag, contexts, nullptr, o);
    ASSERT_EQ(solver.points_to(f.s1).status, QueryStatus::kComplete);
    charged_small = solver.counters().charged_steps;
  }
  {
    ContextTable contexts;
    Solver solver(f.lowered.pag, contexts, nullptr, unlimited());
    ASSERT_EQ(solver.points_to(f.s1).status, QueryStatus::kComplete);
    charged_large = solver.counters().charged_steps;
  }
  EXPECT_EQ(charged_small, charged_large);
  EXPECT_GT(charged_small, 0u);
}

TEST(SolverBudget, TraversedEqualsChargedWithoutSharing) {
  const auto f = test::fig2();
  ContextTable contexts;
  Solver solver(f.lowered.pag, contexts, nullptr, unlimited());
  solver.points_to(f.s1);
  EXPECT_EQ(solver.counters().charged_steps, solver.counters().traversed_steps);
  EXPECT_EQ(solver.counters().saved_steps, 0u);
}

// ---- basic shapes -----------------------------------------------------------

TEST(SolverBasics, NewAndAssignChain) {
  pag::Pag::Builder b;
  const auto a = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto c = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto d = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto o = b.add_object(pag::TypeId(0), pag::MethodId(0));
  b.new_edge(a, o);
  b.assign_local(c, a);
  b.assign_local(d, c);
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, unlimited());
  EXPECT_TRUE(solver.points_to(d).contains(o));
  EXPECT_TRUE(solver.points_to(c).contains(o));
  EXPECT_TRUE(solver.points_to(a).contains(o));
  // Value flow is directional: a = c would be required for the reverse.
  const auto ra = solver.flows_to(o);
  EXPECT_TRUE(ra.contains(a));
  EXPECT_TRUE(ra.contains(d));
}

TEST(SolverBasics, AssignCycleConverges) {
  pag::Pag::Builder b;
  const auto x = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto y = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto o = b.add_object(pag::TypeId(0), pag::MethodId(0));
  b.new_edge(x, o);
  b.assign_local(y, x);
  b.assign_local(x, y);
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, unlimited());
  EXPECT_TRUE(solver.points_to(x).contains(o));
  EXPECT_TRUE(solver.points_to(y).contains(o));
}

TEST(SolverBasics, FieldCycleThroughHeapConverges) {
  // x = new O; x.f = x; y = x.f; y.f = y — heap cycles exercise the
  // taint/fixpoint machinery rather than the assign-SCC collapse.
  pag::Pag::Builder b;
  const auto x = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto y = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto o = b.add_object(pag::TypeId(0), pag::MethodId(0));
  const pag::FieldId f(0);
  b.new_edge(x, o);
  b.store(x, x, f);
  b.load(y, x, f);
  b.store(y, y, f);
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, unlimited());
  const auto r = solver.points_to(y);
  ASSERT_EQ(r.status, QueryStatus::kComplete);
  EXPECT_TRUE(r.contains(o));

  const auto andersen = andersen::solve(pag);
  const auto want = andersen.points_to(y);
  const auto got = object_ids(r);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
}

TEST(SolverBasics, GlobalsClearContext) {
  // o reaches g inside a callee; a caller reading g sees it even though the
  // param parenthesis was never opened (globals are context-insensitive).
  pag::Pag::Builder b;
  const auto g = b.add_global(pag::TypeId(0));
  const auto callee_local = b.add_local(pag::TypeId(0), pag::MethodId(1));
  const auto caller_var = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto o = b.add_object(pag::TypeId(0), pag::MethodId(1));
  b.new_edge(callee_local, o);
  b.assign_global(g, callee_local);
  b.assign_global(caller_var, g);
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, unlimited());
  EXPECT_TRUE(solver.points_to(caller_var).contains(o));
}

TEST(SolverBasics, UnrealisablePathRejected) {
  // formal <- actual1 (site 1), formal <- actual2 (site 2);
  // ret1 <- retvar (site 1) where retvar = formal.
  // Then ret1 must see only actual1's object.
  pag::Pag::Builder b;
  const auto actual1 = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto actual2 = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto formal = b.add_local(pag::TypeId(0), pag::MethodId(1));
  const auto recv1 = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto o1 = b.add_object(pag::TypeId(0), pag::MethodId(0));
  const auto o2 = b.add_object(pag::TypeId(0), pag::MethodId(0));
  b.new_edge(actual1, o1);
  b.new_edge(actual2, o2);
  b.param(formal, actual1, pag::CallSiteId(1));
  b.param(formal, actual2, pag::CallSiteId(2));
  b.ret(recv1, formal, pag::CallSiteId(1));
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, unlimited());
  const auto r = solver.points_to(recv1);
  EXPECT_TRUE(r.contains(o1));
  EXPECT_FALSE(r.contains(o2));

  // Context-insensitively both flow in.
  Solver ci(pag, contexts, nullptr, unlimited(false));
  const auto rci = ci.points_to(recv1);
  EXPECT_TRUE(rci.contains(o1));
  EXPECT_TRUE(rci.contains(o2));
}

TEST(SolverBasics, PartialBalanceAllowsExitingIntoCaller) {
  // A query inside a callee may exit into any caller: formal's points-to
  // includes objects passed at *any* call site when the stack is empty.
  pag::Pag::Builder b;
  const auto actual1 = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto actual2 = b.add_local(pag::TypeId(0), pag::MethodId(0));
  const auto formal = b.add_local(pag::TypeId(0), pag::MethodId(1));
  const auto o1 = b.add_object(pag::TypeId(0), pag::MethodId(0));
  const auto o2 = b.add_object(pag::TypeId(0), pag::MethodId(0));
  b.new_edge(actual1, o1);
  b.new_edge(actual2, o2);
  b.param(formal, actual1, pag::CallSiteId(0));
  b.param(formal, actual2, pag::CallSiteId(1));
  const auto pag = std::move(b).finalize();

  ContextTable contexts;
  Solver solver(pag, contexts, nullptr, unlimited());
  const auto r = solver.points_to(formal);
  EXPECT_TRUE(r.contains(o1));
  EXPECT_TRUE(r.contains(o2));
}

TEST(SolverBasics, FieldInsensitiveModeIgnoresHeap) {
  const auto f = test::fig2();
  ContextTable contexts;
  SolverOptions o = unlimited();
  o.field_sensitive = false;  // LFT of eq. (1): only new/assign
  Solver solver(f.lowered.pag, contexts, nullptr, o);
  const auto r = solver.points_to(f.s1);
  ASSERT_EQ(r.status, QueryStatus::kComplete);
  EXPECT_FALSE(r.contains(f.o16));  // reaches s1 only through the heap
}

TEST(SolverBasics, CollapsedGraphGivesSameAnswers) {
  const auto f = test::fig2();
  const auto collapsed = pag::collapse_assign_cycles(f.lowered.pag);

  ContextTable c1, c2;
  Solver a(f.lowered.pag, c1, nullptr, unlimited());
  Solver b(collapsed.pag, c2, nullptr, unlimited());

  for (const NodeId v : test::all_variables(f.lowered.pag)) {
    const auto ra = a.points_to(v);
    const auto rb = b.points_to(collapsed.representative[v.value()]);
    // Object ids are renumbered by collapsing; compare set sizes and
    // per-object membership through the representative map.
    const auto na = ra.nodes();
    const auto nb = rb.nodes();
    ASSERT_EQ(na.size(), nb.size()) << "node " << v.value();
    for (std::size_t i = 0; i < na.size(); ++i)
      EXPECT_EQ(collapsed.representative[na[i].value()], nb[i]);
  }
}

}  // namespace
}  // namespace parcfl
